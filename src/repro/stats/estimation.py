"""Estimation helpers: distribution fits and confidence intervals.

The paper stresses that safety optimization is only as good as its
statistical model (Sect. V) and that "good interfaces between mathematics
and statistics" improve safety analysis.  This module provides the small
estimation toolbox a practitioner needs to turn observed data (driving
times, sensor fault logs, alarm counts) into the distributions and
probabilities the rest of the library consumes.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import DistributionError
from repro.stats.distributions import Exponential, Normal, Weibull


def _require_samples(samples: Sequence[float], minimum: int) -> None:
    if len(samples) < minimum:
        raise DistributionError(
            f"need at least {minimum} samples, got {len(samples)}")


def fit_normal_moments(samples: Sequence[float]) -> Normal:
    """Fit a :class:`Normal` by the method of moments (sample mean / std).

    Uses the unbiased (n-1) variance estimator.
    """
    _require_samples(samples, 2)
    n = len(samples)
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    if var <= 0.0:
        raise DistributionError("samples have zero variance; cannot fit")
    return Normal(mu=mean, sigma=math.sqrt(var))


def fit_exponential_mle(samples: Sequence[float]) -> Exponential:
    """Fit an :class:`Exponential` by maximum likelihood (rate = 1 / mean)."""
    _require_samples(samples, 1)
    if any(x < 0.0 for x in samples):
        raise DistributionError("exponential samples must be non-negative")
    mean = sum(samples) / len(samples)
    if mean <= 0.0:
        raise DistributionError("sample mean must be positive")
    return Exponential(lam=1.0 / mean)


def fit_weibull_moments(samples: Sequence[float]) -> Weibull:
    """Fit a :class:`Weibull` by matching mean and variance.

    Solves for the shape ``k`` such that the theoretical coefficient of
    variation matches the sample's, by bisection on ``k in [0.05, 50]``,
    then sets the scale from the mean.
    """
    _require_samples(samples, 2)
    if any(x <= 0.0 for x in samples):
        raise DistributionError("weibull samples must be positive")
    n = len(samples)
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    if var <= 0.0:
        raise DistributionError("samples have zero variance; cannot fit")
    target_cv2 = var / (mean * mean)

    def cv2_of(k: float) -> float:
        g1 = math.gamma(1.0 + 1.0 / k)
        g2 = math.gamma(1.0 + 2.0 / k)
        return g2 / (g1 * g1) - 1.0

    lo, hi = 0.05, 50.0
    # cv2 is decreasing in k; make sure the target is bracketed.
    if target_cv2 > cv2_of(lo) or target_cv2 < cv2_of(hi):
        raise DistributionError(
            f"sample coefficient of variation {math.sqrt(target_cv2):.3g} "
            "outside fittable Weibull range")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if cv2_of(mid) > target_cv2:
            lo = mid
        else:
            hi = mid
    k = 0.5 * (lo + hi)
    scale = mean / math.gamma(1.0 + 1.0 / k)
    return Weibull(k=k, lam=scale)


def normal_ci(mean: float, std_err: float,
              confidence: float = 0.95) -> Tuple[float, float]:
    """Normal-approximation confidence interval ``mean +- z * std_err``."""
    if std_err < 0.0:
        raise DistributionError(f"std_err must be >= 0, got {std_err}")
    z = _z_for(confidence)
    return (mean - z * std_err, mean + z * std_err)


def wilson_ci(successes: int, trials: int,
              confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the Wald interval for the tiny probabilities typical of
    hazard estimation: it never leaves ``[0, 1]`` and behaves sensibly when
    ``successes`` is 0 or equals ``trials``.
    """
    if trials <= 0:
        raise DistributionError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise DistributionError(
            f"successes must be in [0, {trials}], got {successes}")
    z = _z_for(confidence)
    p_hat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p_hat + z2 / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


def pooled_wilson_ci(counts: Sequence[Tuple[int, int]],
                     confidence: float = 0.95
                     ) -> Tuple[int, int, Tuple[float, float]]:
    """Pool ``(successes, trials)`` shards into one Wilson interval.

    The merge used by :mod:`repro.engine` for sharded Monte Carlo runs:
    Bernoulli samples are exchangeable across independently seeded
    shards, so pooling the raw counts and intervalling once is exact —
    unlike averaging per-shard intervals.  Returns
    ``(successes, trials, (low, high))``.
    """
    if not counts:
        raise DistributionError("cannot pool an empty list of counts")
    successes = 0
    trials = 0
    for shard_successes, shard_trials in counts:
        if shard_trials <= 0:
            raise DistributionError(
                f"shard trials must be > 0, got {shard_trials}")
        if not 0 <= shard_successes <= shard_trials:
            raise DistributionError(
                f"shard successes must be in [0, {shard_trials}], "
                f"got {shard_successes}")
        successes += shard_successes
        trials += shard_trials
    return successes, trials, wilson_ci(successes, trials, confidence)


def _z_for(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level."""
    if not 0.0 < confidence < 1.0:
        raise DistributionError(
            f"confidence must be in (0, 1), got {confidence}")
    from repro.stats.distributions import _big_phi_inv
    return _big_phi_inv(0.5 + confidence / 2.0)
