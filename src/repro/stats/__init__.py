"""Statistics substrate: distributions, reliability models, estimation.

The paper's parameterized probabilities (Sect. II-D.2, IV-C) are functions
built from standard probability distributions — most prominently the
truncated normal driving-time model ``Normal(mu=4, sigma=2)`` restricted to
non-negative times.  This package provides those distributions with a
uniform interface (:class:`Distribution`), reliability models that map
exposure parameters to failure probabilities, and simple estimation helpers
(fits and confidence intervals) forming the "interface between mathematics
and statistics" the paper argues for.
"""

from repro.stats.bayes import (
    Beta,
    GammaDist,
    jeffreys_prior,
    uniform_prior,
    update_binomial,
    update_poisson_exposure,
)
from repro.stats.distributions import (
    Distribution,
    Exponential,
    LogNormal,
    Normal,
    PointMass,
    TruncatedNormal,
    Uniform,
    Weibull,
)
from repro.stats.estimation import (
    fit_exponential_mle,
    fit_normal_moments,
    fit_weibull_moments,
    normal_ci,
    pooled_wilson_ci,
    wilson_ci,
)
from repro.stats.reliability import (
    ConstantRateModel,
    ExposureWindowModel,
    MissionTimeModel,
    PerDemandModel,
    ReliabilityModel,
    WeibullHazardModel,
)

__all__ = [
    "Beta",
    "GammaDist",
    "jeffreys_prior",
    "uniform_prior",
    "update_binomial",
    "update_poisson_exposure",
    "Distribution",
    "Normal",
    "TruncatedNormal",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Uniform",
    "PointMass",
    "ReliabilityModel",
    "ConstantRateModel",
    "WeibullHazardModel",
    "PerDemandModel",
    "MissionTimeModel",
    "ExposureWindowModel",
    "fit_normal_moments",
    "fit_exponential_mle",
    "fit_weibull_moments",
    "normal_ci",
    "wilson_ci",
    "pooled_wilson_ci",
]
