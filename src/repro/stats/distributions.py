"""Probability distributions with a uniform cdf/pdf/ppf/sample interface.

The paper models OHV driving times as a normal distribution truncated to
non-negative values (Sect. IV-C): ``P_OHV(Time <= T)`` is the normalized
integral of the Gaussian density over ``[0, T]``.  :class:`TruncatedNormal`
implements exactly that normalization.  The other distributions are the
standard toolbox the paper refers to ("in statistics there exist quite a lot
of distributions which describe such dependencies").

Every distribution is immutable and hashable so parameterized probability
expressions built on top of them can be cached and compared safely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)


def _phi(z: float) -> float:
    """Standard normal density."""
    return math.exp(-0.5 * z * z) / _SQRT2PI


def _big_phi(z: float) -> float:
    """Standard normal cumulative distribution function."""
    return 0.5 * (1.0 + math.erf(z / _SQRT2))


def _big_phi_inv(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation).

    Accurate to roughly 1e-9 over (0, 1), refined with one Newton step,
    which is ample for optimization and sampling purposes.
    """
    if not 0.0 < p < 1.0:
        raise DistributionError(f"ppf argument must be in (0, 1), got {p}")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        x = ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
              a[5]) * q /
             (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
              1.0))
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    # One Newton refinement using the exact erf-based CDF.
    err = _big_phi(x) - p
    density = _phi(x)
    if density > 0.0:
        x -= err / density
    return x


def _as_probability_array(p) -> np.ndarray:
    """Coerce quantile arguments to a 1-D float64 array."""
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim != 1:
        raise DistributionError(
            f"batch quantiles expect a 1-D array, got shape {arr.shape}")
    return arr


def _check_open_unit(p: np.ndarray) -> np.ndarray:
    """Validate every probability lies in the open interval (0, 1)."""
    valid = (p > 0.0) & (p < 1.0)
    if p.size and not valid.all():
        # The complement of validity, not a direct comparison, so NaNs
        # (which fail every comparison) are reported too.
        bad = p[~valid][0]
        raise DistributionError(
            f"ppf argument must be in (0, 1), got {bad}")
    return p


def _check_closed_unit(p: np.ndarray) -> np.ndarray:
    """Validate every probability lies in the closed interval [0, 1]."""
    valid = (p >= 0.0) & (p <= 1.0)
    if p.size and not valid.all():
        bad = p[~valid][0]
        raise DistributionError(
            f"ppf argument must be in [0, 1], got {bad}")
    return p


def _big_phi_inv_batch(p: np.ndarray) -> np.ndarray:
    """Element-wise :func:`_big_phi_inv` over an array.

    The transcendental core stays element-wise on purpose: NumPy's SIMD
    ``exp``/``log``/``erf`` kernels differ from libm in the last ulp, and
    the library's contract is that batched results are *bit-identical*
    to the scalar path, not merely close.  Callers vectorize the exact
    affine arithmetic around this call.
    """
    return np.fromiter((_big_phi_inv(float(v)) for v in p),
                       dtype=np.float64, count=p.size)


class Distribution:
    """Abstract base class for univariate distributions.

    Subclasses implement :meth:`cdf`, :meth:`pdf` and :meth:`ppf`;
    :meth:`sample` and the survival helpers are derived.
    """

    def cdf(self, x: float) -> float:
        """Return ``P(X <= x)``."""
        raise NotImplementedError

    def pdf(self, x: float) -> float:
        """Return the density at ``x`` (0 outside the support)."""
        raise NotImplementedError

    def ppf(self, p: float) -> float:
        """Return the quantile: smallest ``x`` with ``cdf(x) >= p``."""
        raise NotImplementedError

    def sf(self, x: float) -> float:
        """Survival function ``P(X > x) = 1 - cdf(x)``."""
        return 1.0 - self.cdf(x)

    @property
    def mean(self) -> float:
        """Expected value of the distribution."""
        raise NotImplementedError

    @property
    def variance(self) -> float:
        """Variance of the distribution."""
        raise NotImplementedError

    @property
    def std(self) -> float:
        """Standard deviation of the distribution."""
        return math.sqrt(self.variance)

    def sample(self, rng) -> float:
        """Draw one sample using inverse-transform sampling.

        ``rng`` is any object with a ``random()`` method returning a float
        in ``[0, 1)`` (e.g. :class:`random.Random`).
        """
        u = rng.random()
        # Guard against u == 0, which would put ppf outside its domain.
        if u <= 0.0:
            u = 5e-324
        return self.ppf(u)

    def sample_many(self, rng, n: int) -> list:
        """Draw ``n`` independent samples as a list of floats."""
        if n < 0:
            raise DistributionError(f"sample count must be >= 0, got {n}")
        return [self.sample(rng) for _ in range(n)]

    def ppf_batch(self, p) -> np.ndarray:
        """Quantiles of a whole probability vector as a float64 array.

        Element-wise **bit-identical** to calling :meth:`ppf` per value —
        the contract the UQ propagation paths rely on.  Subclasses whose
        quantile is exact affine arithmetic (or a SciPy ufunc evaluating
        the same kernel either way) override this with a truly vectorized
        path; this generic fallback evaluates the scalar quantile per
        element, which is correct for every subclass.
        """
        p = _as_probability_array(p)
        return np.fromiter((self.ppf(float(v)) for v in p),
                           dtype=np.float64, count=p.size)

    def sample_batch(self, rng, n: int) -> np.ndarray:
        """Draw ``n`` samples as a float64 array.

        Consumes exactly the same ``rng`` stream as :meth:`sample_many`
        (one ``rng.random()`` per draw, the same zero guard) and pushes
        the uniforms through :meth:`ppf_batch`, so the values are
        bit-identical to the scalar path.
        """
        if n < 0:
            raise DistributionError(f"sample count must be >= 0, got {n}")

        def draws():
            for _ in range(n):
                u = rng.random()
                yield 5e-324 if u <= 0.0 else u

        uniforms = np.fromiter(draws(), dtype=np.float64, count=n)
        return self.ppf_batch(uniforms)


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian distribution ``N(mu, sigma^2)``."""

    mu: float
    sigma: float

    def __post_init__(self):
        if self.sigma <= 0.0:
            raise DistributionError(f"sigma must be > 0, got {self.sigma}")

    def cdf(self, x: float) -> float:
        return _big_phi((x - self.mu) / self.sigma)

    def pdf(self, x: float) -> float:
        return _phi((x - self.mu) / self.sigma) / self.sigma

    def ppf(self, p: float) -> float:
        return self.mu + self.sigma * _big_phi_inv(p)

    def ppf_batch(self, p) -> np.ndarray:
        # mu + sigma * z vectorizes exactly (IEEE ops are element-wise);
        # the transcendental inverse CDF stays on the scalar kernel.
        p = _check_open_unit(_as_probability_array(p))
        return self.mu + self.sigma * _big_phi_inv_batch(p)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.sigma * self.sigma


@dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Normal distribution restricted (and renormalized) to ``[lower, upper]``.

    This is the paper's driving-time model: ``Normal(mu=4, sigma=2)``
    truncated to non-negative times, whose CDF is

    ``P(Time <= T) = (Phi((T-mu)/sigma) - Phi((lo-mu)/sigma)) / Z``

    with ``Z`` the Gaussian mass inside ``[lower, upper]``.
    """

    mu: float
    sigma: float
    lower: float = 0.0
    upper: float = math.inf

    def __post_init__(self):
        if self.sigma <= 0.0:
            raise DistributionError(f"sigma must be > 0, got {self.sigma}")
        if not self.lower < self.upper:
            raise DistributionError(
                f"empty truncation interval [{self.lower}, {self.upper}]")
        if self._mass() <= 0.0:
            raise DistributionError(
                "truncation interval carries no probability mass")

    def _alpha(self) -> float:
        return (self.lower - self.mu) / self.sigma

    def _beta(self) -> float:
        if math.isinf(self.upper):
            return math.inf
        return (self.upper - self.mu) / self.sigma

    def _mass(self) -> float:
        hi = 1.0 if math.isinf(self.upper) else _big_phi(self._beta())
        lo = 0.0 if math.isinf(self.lower) else _big_phi(self._alpha())
        if math.isinf(self.lower) and self.lower < 0:
            lo = 0.0
        return hi - lo

    def cdf(self, x: float) -> float:
        if x <= self.lower:
            return 0.0
        if x >= self.upper:
            return 1.0
        lo = _big_phi(self._alpha()) if not math.isinf(self.lower) else 0.0
        return (_big_phi((x - self.mu) / self.sigma) - lo) / self._mass()

    def pdf(self, x: float) -> float:
        if x < self.lower or x > self.upper:
            return 0.0
        return _phi((x - self.mu) / self.sigma) / (self.sigma * self._mass())

    def ppf(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise DistributionError(f"ppf argument must be in (0, 1), got {p}")
        lo = _big_phi(self._alpha()) if not math.isinf(self.lower) else 0.0
        return self.mu + self.sigma * _big_phi_inv(lo + p * self._mass())

    def ppf_batch(self, p) -> np.ndarray:
        # lo + p * mass and mu + sigma * z are exact element-wise IEEE
        # arithmetic on the same scalar constants; only the inverse CDF
        # needs the scalar kernel.
        p = _check_open_unit(_as_probability_array(p))
        lo = _big_phi(self._alpha()) if not math.isinf(self.lower) else 0.0
        return self.mu + self.sigma * _big_phi_inv_batch(lo + p * self._mass())

    @property
    def mean(self) -> float:
        a, mass = self._alpha(), self._mass()
        phi_a = _phi(a) if not math.isinf(self.lower) else 0.0
        phi_b = 0.0 if math.isinf(self.upper) else _phi(self._beta())
        return self.mu + self.sigma * (phi_a - phi_b) / mass

    @property
    def variance(self) -> float:
        a, mass = self._alpha(), self._mass()
        phi_a = _phi(a) if not math.isinf(self.lower) else 0.0
        if math.isinf(self.upper):
            phi_b, b_term = 0.0, 0.0
        else:
            b = self._beta()
            phi_b, b_term = _phi(b), b * _phi(b)
        a_term = 0.0 if math.isinf(self.lower) else a * phi_a
        frac = (a_term - b_term) / mass
        delta = (phi_a - phi_b) / mass
        return self.sigma * self.sigma * (1.0 + frac - delta * delta)

    def mgf(self, t: float) -> float:
        """Moment generating function ``E[exp(t X)]``.

        Closed form for the truncated normal:
        ``exp(mu t + sigma^2 t^2 / 2) * (Phi(beta - sigma t) -
        Phi(alpha - sigma t)) / (Phi(beta) - Phi(alpha))``.
        Used e.g. for the probability that a Poisson event (rate
        ``lam``) hits a window whose random length is this
        distribution: ``1 - mgf(-lam)``.
        """
        a = self._alpha()
        lo = _big_phi(a - self.sigma * t) if not math.isinf(self.lower) \
            else 0.0
        hi = 1.0 if math.isinf(self.upper) \
            else _big_phi(self._beta() - self.sigma * t)
        factor = math.exp(self.mu * t + 0.5 * self.sigma ** 2 * t * t)
        return factor * (hi - lo) / self._mass()

    def capped_mgf(self, t: float, cap: float) -> float:
        """``E[exp(t * min(X, cap))]`` in closed form.

        Splits at the cap: ``E[e^{tX} 1{X <= cap}] + e^{t cap} P(X > cap)``.
        Used for windows that end at the earlier of a random transit time
        and a fixed timer runtime (the Elbtunnel "with LB4" design).
        """
        if cap <= self.lower:
            return math.exp(t * cap)
        if cap >= self.upper:
            return self.mgf(t)
        a = self._alpha()
        lo = _big_phi(a - self.sigma * t) if not math.isinf(self.lower) \
            else 0.0
        mid = _big_phi((cap - self.mu) / self.sigma - self.sigma * t)
        factor = math.exp(self.mu * t + 0.5 * self.sigma ** 2 * t * t)
        below = factor * (mid - lo) / self._mass()
        return below + math.exp(t * cap) * self.sf(cap)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with rate ``lam`` (mean ``1/lam``).

    The workhorse of reliability: the probability of at least one Poisson
    failure arrival within an exposure window ``t`` is ``cdf(t)``.
    """

    lam: float

    def __post_init__(self):
        if self.lam <= 0.0:
            raise DistributionError(f"rate must be > 0, got {self.lam}")

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return -math.expm1(-self.lam * x)

    def pdf(self, x: float) -> float:
        if x < 0.0:
            return 0.0
        return self.lam * math.exp(-self.lam * x)

    def ppf(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise DistributionError(f"ppf argument must be in (0, 1), got {p}")
        return -math.log1p(-p) / self.lam

    def ppf_batch(self, p) -> np.ndarray:
        # Negation and division vectorize exactly; log1p stays on the
        # libm kernel (NumPy's SIMD log1p differs in the last ulp).
        p = _check_open_unit(_as_probability_array(p))
        logs = np.fromiter((math.log1p(-float(v)) for v in p),
                           dtype=np.float64, count=p.size)
        return -logs / self.lam

    @property
    def mean(self) -> float:
        return 1.0 / self.lam

    @property
    def variance(self) -> float:
        return 1.0 / (self.lam * self.lam)


@dataclass(frozen=True)
class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``.

    ``k < 1`` models infant mortality, ``k == 1`` reduces to the
    exponential, ``k > 1`` models wear-out — the standard bathtub pieces.
    """

    k: float
    lam: float

    def __post_init__(self):
        if self.k <= 0.0 or self.lam <= 0.0:
            raise DistributionError(
                f"shape and scale must be > 0, got k={self.k} lam={self.lam}")

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return -math.expm1(-((x / self.lam) ** self.k))

    def pdf(self, x: float) -> float:
        if x < 0.0:
            return 0.0
        if x == 0.0:
            if self.k < 1.0:
                return math.inf
            return self.k / self.lam if self.k == 1.0 else 0.0
        z = x / self.lam
        return (self.k / self.lam) * z ** (self.k - 1.0) * math.exp(-(z ** self.k))

    def ppf(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise DistributionError(f"ppf argument must be in (0, 1), got {p}")
        return self.lam * (-math.log1p(-p)) ** (1.0 / self.k)

    @property
    def mean(self) -> float:
        return self.lam * math.gamma(1.0 + 1.0 / self.k)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.k)
        g2 = math.gamma(1.0 + 2.0 / self.k)
        return self.lam * self.lam * (g2 - g1 * g1)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal distribution: ``ln X ~ N(mu, sigma^2)``.

    Commonly used for repair times and uncertainty factors on failure
    rates (error-factor style data as in the NRC fault tree handbook).
    """

    mu: float
    sigma: float

    def __post_init__(self):
        if self.sigma <= 0.0:
            raise DistributionError(f"sigma must be > 0, got {self.sigma}")

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return _big_phi((math.log(x) - self.mu) / self.sigma)

    def pdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return _phi((math.log(x) - self.mu) / self.sigma) / (x * self.sigma)

    def ppf(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise DistributionError(f"ppf argument must be in (0, 1), got {p}")
        return math.exp(self.mu + self.sigma * _big_phi_inv(p))

    def ppf_batch(self, p) -> np.ndarray:
        # The affine part vectorizes exactly; exp stays on the libm
        # kernel (NumPy's SIMD exp differs in the last ulp).
        p = _check_open_unit(_as_probability_array(p))
        t = self.mu + self.sigma * _big_phi_inv_batch(p)
        return np.fromiter((math.exp(float(v)) for v in t),
                           dtype=np.float64, count=t.size)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    @property
    def variance(self) -> float:
        s2 = self.sigma * self.sigma
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Continuous uniform distribution on ``[a, b]``."""

    a: float
    b: float

    def __post_init__(self):
        if not self.a < self.b:
            raise DistributionError(f"need a < b, got [{self.a}, {self.b}]")

    def cdf(self, x: float) -> float:
        if x <= self.a:
            return 0.0
        if x >= self.b:
            return 1.0
        return (x - self.a) / (self.b - self.a)

    def pdf(self, x: float) -> float:
        if self.a <= x <= self.b:
            return 1.0 / (self.b - self.a)
        return 0.0

    def ppf(self, p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise DistributionError(f"ppf argument must be in [0, 1], got {p}")
        return self.a + p * (self.b - self.a)

    def ppf_batch(self, p) -> np.ndarray:
        # Pure affine arithmetic: exactly the scalar operations, fully
        # vectorized.
        p = _check_closed_unit(_as_probability_array(p))
        return self.a + p * (self.b - self.a)

    @property
    def mean(self) -> float:
        return 0.5 * (self.a + self.b)

    @property
    def variance(self) -> float:
        w = self.b - self.a
        return w * w / 12.0


@dataclass(frozen=True)
class PointMass(Distribution):
    """Degenerate distribution concentrated at a single value.

    Useful to plug deterministic quantities (a fixed transit time, a
    constant probability) into machinery that expects a distribution.
    """

    value: float

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self.value else 0.0

    def pdf(self, x: float) -> float:
        return math.inf if x == self.value else 0.0

    def ppf(self, p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise DistributionError(f"ppf argument must be in [0, 1], got {p}")
        return self.value

    def ppf_batch(self, p) -> np.ndarray:
        p = _check_closed_unit(_as_probability_array(p))
        return np.full(p.size, self.value, dtype=np.float64)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def sample(self, rng) -> float:
        return self.value

    def sample_batch(self, rng, n: int) -> np.ndarray:
        # Like sample()/sample_many(), a point mass consumes no draws.
        if n < 0:
            raise DistributionError(f"sample count must be >= 0, got {n}")
        return np.full(n, self.value, dtype=np.float64)
