"""Reliability models mapping exposure parameters to failure probabilities.

Parameterized probabilities (paper Sect. II-D.2) are functional mappings
``P(PF): Domain(X) -> [0, 1]``.  In practice such mappings are almost always
built from a handful of reliability idioms:

* a component with constant failure rate exposed for a window of length
  ``t`` fails with probability ``1 - exp(-lambda * t)``
  (:class:`ExposureWindowModel` / :class:`ConstantRateModel`),
* a per-demand failure probability over ``n`` demands
  (:class:`PerDemandModel`),
* a mission of fixed duration (:class:`MissionTimeModel`),
* wear-out behaviour via a Weibull hazard (:class:`WeibullHazardModel`).

Each model is a callable object ``model(x) -> probability``, composable with
the parametric-expression layer in :mod:`repro.core.parametric`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DistributionError


class ReliabilityModel:
    """Base class: a callable mapping a scalar parameter to a probability."""

    def probability(self, x: float) -> float:
        """Return the failure probability for parameter value ``x``."""
        raise NotImplementedError

    def __call__(self, x: float) -> float:
        p = self.probability(x)
        # Numerical guards: models must stay inside [0, 1] even for extreme
        # parameter values fed in by optimizers probing box corners.
        if p < 0.0:
            return 0.0
        if p > 1.0:
            return 1.0
        return p


@dataclass(frozen=True)
class ConstantRateModel(ReliabilityModel):
    """Failure probability of a constant-rate component over time ``t``.

    ``P(t) = 1 - exp(-rate * t)``; the parameter is the exposure time.
    """

    rate: float

    def __post_init__(self):
        if self.rate < 0.0:
            raise DistributionError(f"rate must be >= 0, got {self.rate}")

    def probability(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return -math.expm1(-self.rate * t)


@dataclass(frozen=True)
class ExposureWindowModel(ReliabilityModel):
    """Probability that at least one Poisson event hits an active window.

    Events (false detections, rule-violating high vehicles, ...) arrive as
    a Poisson process with rate ``rate``; the sensor/timer is active for a
    window of length ``w``, so ``P(w) = 1 - exp(-rate * w)``.  This is the
    idiom behind the Elbtunnel parameterized probabilities
    ``P(FD_LBpost)(T1)`` and ``P(HV_ODfinal)(T2)``: the longer a timer keeps
    a detector armed, the likelier a spurious activation falls inside.
    """

    rate: float

    def __post_init__(self):
        if self.rate < 0.0:
            raise DistributionError(f"rate must be >= 0, got {self.rate}")

    def probability(self, w: float) -> float:
        if w <= 0.0:
            return 0.0
        return -math.expm1(-self.rate * w)


@dataclass(frozen=True)
class PerDemandModel(ReliabilityModel):
    """Probability of at least one failure over ``n`` independent demands.

    ``P(n) = 1 - (1 - q)^n`` with per-demand failure probability ``q``.
    The parameter is the (possibly fractional) demand count.
    """

    q: float

    def __post_init__(self):
        if not 0.0 <= self.q <= 1.0:
            raise DistributionError(
                f"per-demand probability must be in [0, 1], got {self.q}")

    def probability(self, n: float) -> float:
        if n <= 0.0:
            return 0.0
        if self.q >= 1.0:
            return 1.0
        return -math.expm1(n * math.log1p(-self.q))


@dataclass(frozen=True)
class MissionTimeModel(ReliabilityModel):
    """Constant-rate failure over a fixed mission; parameter scales the rate.

    ``P(x) = 1 - exp(-rate * x * mission_time)`` — useful when the free
    parameter is a stress/duty-cycle multiplier rather than the time itself.
    """

    rate: float
    mission_time: float

    def __post_init__(self):
        if self.rate < 0.0 or self.mission_time < 0.0:
            raise DistributionError(
                "rate and mission_time must be >= 0, got "
                f"rate={self.rate} mission_time={self.mission_time}")

    def probability(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return -math.expm1(-self.rate * x * self.mission_time)


@dataclass(frozen=True)
class WeibullHazardModel(ReliabilityModel):
    """Failure probability under a Weibull hazard up to time ``t``.

    ``P(t) = 1 - exp(-(t / scale)^shape)`` — models components whose failure
    intensity grows (wear-out, ``shape > 1``) or shrinks (burn-in,
    ``shape < 1``) with exposure; reduces to :class:`ConstantRateModel`
    at ``shape == 1``.
    """

    shape: float
    scale: float

    def __post_init__(self):
        if self.shape <= 0.0 or self.scale <= 0.0:
            raise DistributionError(
                "shape and scale must be > 0, got "
                f"shape={self.shape} scale={self.scale}")

    def probability(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return -math.expm1(-((t / self.scale) ** self.shape))
