"""Bayesian estimation of failure probabilities from operating data.

The paper's quantitative inputs (sensor false-detection probabilities,
accumulated constants) come from operating experience — counts of events
over counts of opportunities.  The conjugate Beta-Binomial machinery
turns such counts into posterior distributions:

* :class:`Beta` — the conjugate prior/posterior family,
* :func:`update_binomial` — posterior after ``k`` failures in ``n``
  demands,
* :func:`update_poisson_exposure` — posterior failure *rate* via the
  Gamma-Poisson conjugacy for "k events in T hours" data, returned as a
  :class:`GammaDist`,
* :func:`jeffreys_prior` — the standard objective prior Beta(1/2, 1/2).

Posterior means/credible intervals plug directly into fault tree leaf
probabilities, and whole posteriors into
:mod:`repro.core.uncertainty` for conclusion-robustness checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import special as _special

from repro.errors import DistributionError
from repro.stats.distributions import (
    Distribution,
    _as_probability_array,
    _check_open_unit,
)


@dataclass(frozen=True)
class Beta(Distribution):
    """Beta distribution on [0, 1] with shape parameters ``a``, ``b``."""

    a: float
    b: float

    def __post_init__(self):
        if self.a <= 0.0 or self.b <= 0.0:
            raise DistributionError(
                f"shape parameters must be > 0, got a={self.a} b={self.b}")

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if x >= 1.0:
            return 1.0
        return float(_special.betainc(self.a, self.b, x))

    def pdf(self, x: float) -> float:
        if not 0.0 <= x <= 1.0:
            return 0.0
        log_norm = (_special.gammaln(self.a + self.b)
                    - _special.gammaln(self.a) - _special.gammaln(self.b))
        if x == 0.0:
            if self.a < 1.0:
                return math.inf
            if self.a > 1.0:
                return 0.0
            return float(math.exp(log_norm)) * (1.0 - x) ** (self.b - 1.0)
        if x == 1.0:
            if self.b < 1.0:
                return math.inf
            if self.b > 1.0:
                return 0.0
        return float(math.exp(
            log_norm + (self.a - 1.0) * math.log(x)
            + (self.b - 1.0) * math.log1p(-x)))

    def ppf(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise DistributionError(f"ppf argument must be in (0, 1), "
                                    f"got {p}")
        return float(_special.betaincinv(self.a, self.b, p))

    def ppf_batch(self, p) -> np.ndarray:
        # SciPy ufuncs evaluate the same C kernel per element whether
        # called on scalars or arrays, so this is both vectorized and
        # bit-identical to the scalar quantile.
        p = _check_open_unit(_as_probability_array(p))
        return np.asarray(_special.betaincinv(self.a, self.b, p),
                          dtype=np.float64)

    @property
    def mean(self) -> float:
        return self.a / (self.a + self.b)

    @property
    def variance(self) -> float:
        total = self.a + self.b
        return self.a * self.b / (total * total * (total + 1.0))

    def credible_interval(self, confidence: float = 0.95
                          ) -> Tuple[float, float]:
        """Central credible interval of the probability."""
        if not 0.0 < confidence < 1.0:
            raise DistributionError(
                f"confidence must be in (0, 1), got {confidence}")
        tail = (1.0 - confidence) / 2.0
        return (self.ppf(tail), self.ppf(1.0 - tail))


@dataclass(frozen=True)
class GammaDist(Distribution):
    """Gamma distribution with shape ``k`` and rate ``rate`` (for rates)."""

    k: float
    rate: float

    def __post_init__(self):
        if self.k <= 0.0 or self.rate <= 0.0:
            raise DistributionError(
                f"shape and rate must be > 0, got k={self.k} "
                f"rate={self.rate}")

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return float(_special.gammainc(self.k, self.rate * x))

    def pdf(self, x: float) -> float:
        if x < 0.0:
            return 0.0
        if x == 0.0:
            if self.k < 1.0:
                return math.inf
            return self.rate if self.k == 1.0 else 0.0
        log_pdf = (self.k * math.log(self.rate)
                   + (self.k - 1.0) * math.log(x) - self.rate * x
                   - float(_special.gammaln(self.k)))
        return math.exp(log_pdf)

    def ppf(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise DistributionError(f"ppf argument must be in (0, 1), "
                                    f"got {p}")
        return float(_special.gammaincinv(self.k, p)) / self.rate

    def ppf_batch(self, p) -> np.ndarray:
        # Same SciPy kernel as the scalar path; the division is exact
        # element-wise IEEE arithmetic.
        p = _check_open_unit(_as_probability_array(p))
        return np.asarray(_special.gammaincinv(self.k, p),
                          dtype=np.float64) / self.rate

    @property
    def mean(self) -> float:
        return self.k / self.rate

    @property
    def variance(self) -> float:
        return self.k / (self.rate * self.rate)

    def credible_interval(self, confidence: float = 0.95
                          ) -> Tuple[float, float]:
        """Central credible interval of the rate."""
        if not 0.0 < confidence < 1.0:
            raise DistributionError(
                f"confidence must be in (0, 1), got {confidence}")
        tail = (1.0 - confidence) / 2.0
        return (self.ppf(tail), self.ppf(1.0 - tail))


def jeffreys_prior() -> Beta:
    """The objective Beta(1/2, 1/2) prior for a binomial probability."""
    return Beta(0.5, 0.5)


def uniform_prior() -> Beta:
    """The flat Beta(1, 1) prior."""
    return Beta(1.0, 1.0)


def update_binomial(prior: Beta, failures: int, demands: int) -> Beta:
    """Posterior after observing ``failures`` in ``demands`` trials."""
    if demands < 0 or failures < 0 or failures > demands:
        raise DistributionError(
            f"need 0 <= failures <= demands, got {failures}/{demands}")
    return Beta(prior.a + failures, prior.b + demands - failures)


def update_poisson_exposure(prior_shape: float, prior_rate: float,
                            events: int, exposure: float) -> GammaDist:
    """Gamma posterior of a Poisson rate after ``events`` in ``exposure``.

    ``prior_shape``/``prior_rate`` parameterize the Gamma prior; the
    Jeffreys choice is shape 0.5, rate -> 0 (use a small rate).
    """
    if events < 0:
        raise DistributionError(f"events must be >= 0, got {events}")
    if exposure <= 0.0:
        raise DistributionError(f"exposure must be > 0, got {exposure}")
    return GammaDist(prior_shape + events, prior_rate + exposure)
