"""Seeded sampling designs producing leaf-probability matrices.

Two designs over the unit hypercube, both deterministic functions of
``(n_samples, n_events, seed)`` alone:

* ``mc``  — plain Monte Carlo: independent uniforms;
* ``lhs`` — Latin hypercube: each event's quantile range is split into
  ``n_samples`` equal strata with one jittered draw per stratum,
  independently shuffled per event — orthogonal-main-effect style space
  coverage (cf. Bagchi, PAPERS.md) that beats plain MC at equal budget.

The design matrix is generated *whole* and up front: Latin strata span
the full sample set, and — more importantly — bit-identical results
independent of worker and shard count require the design to be a pure
function of the seed.  Parallelism in :mod:`repro.engine` therefore
splits the finished matrix row-wise (each row's propagation is an
independent element-wise computation) instead of seeding per-shard
streams.

:func:`probability_matrix` turns uniforms into the ``(n_samples,
n_events)`` leaf-probability matrix the compiled evaluators consume:
uncertain columns through the vectorized
:meth:`~repro.stats.distributions.Distribution.ppf_batch` (clipped into
``[0, 1]``), certain columns held at their default probabilities.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.errors import UQError
from repro.uq.spec import UncertainModel

#: Supported sampling designs.
SAMPLERS = ("mc", "lhs")

#: Uniforms are clamped into the open interval so every quantile
#: function stays inside its domain.
_U_LO = 1e-12
_U_HI = 1.0 - 1e-12


def uniform_matrix(n_samples: int, n_events: int, seed: int = 0,
                   sampler: str = "lhs") -> np.ndarray:
    """A deterministic ``(n_samples, n_events)`` matrix of uniforms.

    The matrix depends only on the arguments — the same call always
    returns the same IEEE doubles, the foundation of the UQ subsystem's
    bit-reproducibility guarantees.
    """
    if sampler not in SAMPLERS:
        raise UQError(
            f"unknown sampler {sampler!r}; expected one of {SAMPLERS}")
    if n_samples < 1:
        raise UQError(f"n_samples must be >= 1, got {n_samples}")
    if n_events < 1:
        raise UQError(f"n_events must be >= 1, got {n_events}")
    rng = np.random.default_rng(int(seed))
    if sampler == "mc":
        u = rng.random((n_samples, n_events))
    else:
        u = np.empty((n_samples, n_events))
        strata = np.arange(n_samples, dtype=np.float64)
        for j in range(n_events):
            jittered = (strata + rng.random(n_samples)) / n_samples
            u[:, j] = rng.permutation(jittered)
    return np.clip(u, _U_LO, _U_HI)


def uncertain_leaves(model: UncertainModel,
                     leaf_names: Sequence[str]) -> list:
    """The uncertain events in leaf-column order, validated.

    Every event in ``model`` must actually be a leaf of the quantified
    tree; a stray name is a modelling error worth failing loudly on.
    """
    names = list(leaf_names)
    unknown = set(model) - set(names)
    if unknown:
        raise UQError(
            f"uncertain events {sorted(unknown)} are not leaves of the "
            f"quantified tree")
    return [name for name in names if name in model]


def fill_probability_matrix(model: UncertainModel,
                            leaf_names: Sequence[str],
                            uniforms: np.ndarray,
                            defaults: Optional[Mapping[str, float]]
                            = None) -> np.ndarray:
    """Turn a uniform design into a leaf-probability matrix.

    ``uniforms`` has one column per uncertain event (in the order
    :func:`uncertain_leaves` yields).  Uncertain columns go through the
    distribution's ``ppf_batch`` and are clipped into ``[0, 1]``;
    certain columns are held constant at their ``defaults`` entry.
    Shared by every design consumer (propagation, Sobol pick-freeze,
    robust objectives) so the fill/validate/clip semantics cannot
    diverge between them.
    """
    defaults = defaults or {}
    names = list(leaf_names)
    uncertain = uncertain_leaves(model, names)
    if uniforms.ndim != 2 or uniforms.shape[1] != len(uncertain):
        raise UQError(
            f"uniform design must have shape (n, {len(uncertain)}), "
            f"got {uniforms.shape}")
    matrix = np.empty((uniforms.shape[0], len(names)), dtype=np.float64)
    column_of: Dict[str, int] = {name: k
                                 for k, name in enumerate(uncertain)}
    for j, name in enumerate(names):
        if name in column_of:
            values = model[name].ppf_batch(uniforms[:, column_of[name]])
            matrix[:, j] = np.minimum(1.0, np.maximum(0.0, values))
        else:
            if name not in defaults:
                raise UQError(
                    f"leaf {name!r} has neither a distribution nor a "
                    f"default probability")
            value = float(defaults[name])
            if not 0.0 <= value <= 1.0:
                raise UQError(
                    f"default probability of {name!r} must be in "
                    f"[0, 1], got {value}")
            matrix[:, j] = value
    return matrix


def probability_matrix(model: UncertainModel,
                       leaf_names: Sequence[str],
                       n_samples: int, seed: int = 0,
                       sampler: str = "lhs",
                       defaults: Optional[Mapping[str, float]] = None,
                       ) -> np.ndarray:
    """The ``(n_samples, len(leaf_names))`` leaf-probability matrix.

    ``leaf_names`` is the evaluator's column order
    (:attr:`CompiledHazard.leaf_names <repro.compile.CompiledHazard>`).
    Columns named in ``model`` are sampled — uniforms from
    :func:`uniform_matrix` pushed through the distribution's
    ``ppf_batch`` and clipped into ``[0, 1]`` — while the remaining
    columns are held constant at their ``defaults`` entry.
    """
    if n_samples < 1:
        raise UQError(f"n_samples must be >= 1, got {n_samples}")
    # A valid model is non-empty and fully contained in the leaves, so
    # there is always at least one uncertain column to draw.
    uncertain = uncertain_leaves(model, leaf_names)
    uniforms = uniform_matrix(n_samples, len(uncertain), seed=seed,
                              sampler=sampler)
    return fill_probability_matrix(model, leaf_names, uniforms,
                                   defaults=defaults)
