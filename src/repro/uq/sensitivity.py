"""Global sensitivity of the top-event probability: Sobol and tornado.

Variance-based sensitivity answers the paper's Sect. V worry head-on:
*which* contested statistical assumption actually moves the conclusion?
The Saltelli pick-freeze design estimates first-order indices
(``S_i = Var(E[Y|X_i]) / Var(Y)``, the fraction of output variance the
event explains alone) and total-order indices (``T_i``, everything the
event is involved in, interactions included) from ``(d + 2) * n`` model
evaluations — all pushed through one compiled batch, so a full Sobol
analysis of a production-scale tree costs a few NumPy sweeps.

The tornado ranking is the cheap cousin: swing the top-event probability
between each event's low and high quantile with everything else at its
median — ``2 d + 1`` evaluations, one batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import UQError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.tree import FaultTree
from repro.uq.propagate import _checked_evaluator
from repro.uq.sampling import (
    SAMPLERS,
    fill_probability_matrix,
    uncertain_leaves,
    uniform_matrix,
)
from repro.uq.spec import UncertainModel


@dataclass(frozen=True)
class SobolIndices:
    """First- and total-order Sobol indices per uncertain event."""

    name: str
    first: Dict[str, float]
    total: Dict[str, float]
    n_samples: int
    seed: int
    variance: float

    @property
    def events(self) -> Tuple[str, ...]:
        return tuple(self.first)

    def ranking(self) -> List[Tuple[str, float, float]]:
        """``(event, S_i, T_i)`` rows sorted by total index, descending."""
        return sorted(
            ((event, self.first[event], self.total[event])
             for event in self.first),
            key=lambda row: row[2], reverse=True)

    def __repr__(self) -> str:
        top = self.ranking()[0] if self.first else ("-", 0.0, 0.0)
        return (f"SobolIndices({self.name}: {len(self.first)} events, "
                f"top {top[0]!r} S={top[1]:.3f} T={top[2]:.3f})")


def sobol_from_samples(f_a: np.ndarray, f_b: np.ndarray,
                       f_ab: Dict[str, np.ndarray]
                       ) -> Tuple[Dict[str, float], Dict[str, float],
                                  float]:
    """Saltelli/Jansen estimators from pick-freeze evaluations.

    ``f_a``/``f_b`` are the model on the two independent matrices;
    ``f_ab[i]`` the model on A with column ``i`` replaced from B.
    Returns ``(first, total, variance)`` — the index mappings (both
    clipped into ``[0, 1]``) plus the pooled output variance they were
    normalized by.  Exposed separately so analytic test functions (and
    models outside the fault-tree machinery) can reuse the estimators.
    """
    f_a = np.asarray(f_a, dtype=np.float64)
    f_b = np.asarray(f_b, dtype=np.float64)
    if f_a.shape != f_b.shape or f_a.ndim != 1 or f_a.size < 2:
        raise UQError(
            f"need matching 1-D sample vectors of length >= 2, got "
            f"{f_a.shape} and {f_b.shape}")
    pooled = np.concatenate([f_a, f_b])
    variance = float(np.var(pooled, ddof=1))
    first: Dict[str, float] = {}
    total: Dict[str, float] = {}
    for event, f_mixed in f_ab.items():
        f_mixed = np.asarray(f_mixed, dtype=np.float64)
        if f_mixed.shape != f_a.shape:
            raise UQError(
                f"pick-freeze vector for {event!r} has shape "
                f"{f_mixed.shape}, expected {f_a.shape}")
        if variance <= 0.0:
            first[event] = 0.0
            total[event] = 0.0
            continue
        # Saltelli 2010 first-order and Jansen total-order estimators.
        s_i = float(np.mean(f_b * (f_mixed - f_a))) / variance
        t_i = float(np.mean((f_a - f_mixed) ** 2)) / (2.0 * variance)
        first[event] = min(1.0, max(0.0, s_i))
        total[event] = min(1.0, max(0.0, t_i))
    return first, total, variance


def sobol_indices(tree: FaultTree, model: UncertainModel,
                  n_samples: int = 1024, seed: int = 0,
                  sampler: str = "mc", method: str = "exact",
                  policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT
                  ) -> SobolIndices:
    """Sobol first/total indices of the top-event probability.

    The A and B matrices come from one seeded ``(n, 2d)`` design split
    in half (so the whole analysis is reproducible from the seed); all
    ``(d + 2) * n`` evaluations run as a single compiled batch.
    """
    if n_samples < 2:
        raise UQError(f"n_samples must be >= 2, got {n_samples}")
    if sampler not in SAMPLERS:
        raise UQError(
            f"unknown sampler {sampler!r}; expected one of {SAMPLERS}")
    evaluator = _checked_evaluator(tree, method, policy)
    names = evaluator.leaf_names
    uncertain = uncertain_leaves(model, names)
    d = len(uncertain)
    design = uniform_matrix(n_samples, 2 * d, seed=seed, sampler=sampler)
    defaults = evaluator.defaults
    m_a = fill_probability_matrix(model, names, design[:, :d],
                                  defaults=defaults)
    m_b = fill_probability_matrix(model, names, design[:, d:],
                                  defaults=defaults)
    blocks = [m_a, m_b]
    for k in range(d):
        mixed = m_a.copy()
        column = names.index(uncertain[k])
        mixed[:, column] = m_b[:, column]
        blocks.append(mixed)
    stacked = np.concatenate(blocks, axis=0)
    values = evaluator.evaluate_matrix(stacked)
    f_a = values[:n_samples]
    f_b = values[n_samples:2 * n_samples]
    f_ab = {uncertain[k]:
            values[(2 + k) * n_samples:(3 + k) * n_samples]
            for k in range(d)}
    first, total, variance = sobol_from_samples(f_a, f_b, f_ab)
    return SobolIndices(name=tree.name, first=first, total=total,
                        n_samples=n_samples, seed=int(seed),
                        variance=variance)


@dataclass(frozen=True)
class TornadoEntry:
    """One event's swing on the tornado chart."""

    event: str
    low: float
    high: float
    baseline: float

    @property
    def swing(self) -> float:
        """Width of the top-event excursion driven by this event."""
        return abs(self.high - self.low)


def tornado(tree: FaultTree, model: UncertainModel,
            low_q: float = 0.05, high_q: float = 0.95,
            method: str = "exact",
            policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT
            ) -> List[TornadoEntry]:
    """One-at-a-time swing ranking of the uncertain events.

    Every event is pushed to its ``low_q`` and ``high_q`` quantile while
    the others sit at their medians; entries come back sorted by swing,
    largest first — the classic tornado chart, and a cheap preview of
    the Sobol total-order ranking (exact for additive trees).
    """
    if not 0.0 < low_q < high_q < 1.0:
        raise UQError(
            f"need 0 < low_q < high_q < 1, got {low_q}, {high_q}")
    evaluator = _checked_evaluator(tree, method, policy)
    names = evaluator.leaf_names
    uncertain = uncertain_leaves(model, names)
    defaults = evaluator.defaults

    def clipped(value: float) -> float:
        return min(1.0, max(0.0, value))

    base_row = []
    for name in names:
        if name in model:
            base_row.append(clipped(model[name].ppf(0.5)))
        elif name in defaults:
            base_row.append(float(defaults[name]))
        else:
            raise UQError(
                f"leaf {name!r} has neither a distribution nor a "
                f"default probability")
    rows = [list(base_row)]
    for event in uncertain:
        j = names.index(event)
        for q in (low_q, high_q):
            row = list(base_row)
            row[j] = clipped(model[event].ppf(q))
            rows.append(row)
    values = evaluator.evaluate_matrix(np.asarray(rows,
                                                  dtype=np.float64))
    baseline = float(values[0])
    entries = []
    for k, event in enumerate(uncertain):
        low = float(values[1 + 2 * k])
        high = float(values[2 + 2 * k])
        entries.append(TornadoEntry(event=event, low=low, high=high,
                                    baseline=baseline))
    return sorted(entries, key=lambda e: e.swing, reverse=True)
