"""Epistemic uncertainty quantification over fault-tree risk.

The point machinery (quantification, optimization, importance) answers
questions at fixed basic-event probabilities; this package answers the
same questions *given what is actually known* about those
probabilities:

* :mod:`repro.uq.spec`        — :class:`UncertainModel`: immutable,
  hashable event → distribution maps with engine-compatible
  fingerprints, plus error-factor helpers;
* :mod:`repro.uq.sampling`    — seeded plain-MC and Latin-hypercube
  designs producing ``(n_samples, n_events)`` probability matrices via
  the vectorized ``ppf_batch``;
* :mod:`repro.uq.propagate`   — the whole matrix through one compiled
  batch: top-event probability distributions with credible intervals
  and exceedance curves, bit-identical to the scalar reference loop;
* :mod:`repro.uq.sensitivity` — Saltelli-design Sobol first/total
  indices and a one-batch tornado ranking;
* :mod:`repro.uq.robust`      — :class:`~repro.core.model.SafetyModel`
  wrapped into a percentile-risk optimization problem (the paper's
  optimization made robust).

Quickstart::

    from repro.elbtunnel import collision_fault_tree
    from repro.uq import from_error_factors, propagate, sobol_indices

    tree = collision_fault_tree()
    model = from_error_factors(tree, error_factor=3.0)
    result = propagate(tree, model, n_samples=10_000, sampler="lhs")
    print(result.summary())
    print(sobol_indices(tree, model).ranking())
"""

from repro.uq.propagate import (
    DEFAULT_PERCENTILES,
    PropagationResult,
    percentile,
    propagate,
    propagation_matrix,
    reference_propagate,
)
from repro.uq.robust import (
    RobustCostObjective,
    robust_problem,
)
from repro.uq.sampling import (
    SAMPLERS,
    fill_probability_matrix,
    probability_matrix,
    uncertain_leaves,
    uniform_matrix,
)
from repro.uq.sensitivity import (
    SobolIndices,
    TornadoEntry,
    sobol_from_samples,
    sobol_indices,
    tornado,
)
from repro.uq.spec import (
    UncertainModel,
    distribution_fingerprint,
    from_error_factors,
    lognormal_error_factor,
)

__all__ = [
    "UncertainModel",
    "distribution_fingerprint",
    "from_error_factors",
    "lognormal_error_factor",
    "SAMPLERS",
    "uniform_matrix",
    "probability_matrix",
    "fill_probability_matrix",
    "uncertain_leaves",
    "DEFAULT_PERCENTILES",
    "PropagationResult",
    "percentile",
    "propagate",
    "propagation_matrix",
    "reference_propagate",
    "SobolIndices",
    "TornadoEntry",
    "sobol_from_samples",
    "sobol_indices",
    "tornado",
    "RobustCostObjective",
    "robust_problem",
]
