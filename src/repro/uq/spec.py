"""Immutable epistemic-uncertainty specifications over basic events.

"It is our experience, that the results of this analysis depend a lot on
how well the statistical model reflects reality" (paper Sect. V).  The
Elbtunnel failure rates are estimates from operating experience, yet the
quantification machinery consumes point probabilities.  An
:class:`UncertainModel` closes that gap declaratively: it maps basic
events (primary failures and INHIBIT conditions) to
:class:`~repro.stats.distributions.Distribution` objects describing what
is actually known about their probabilities — lognormal error-factor
data (NRC handbook style, :func:`lognormal_error_factor`), Beta
posteriors straight from :mod:`repro.stats.bayes` operating-experience
updates, truncated normals, or point masses for quantities taken as
certain.

The model is immutable and hashable, and it carries a canonical
:attr:`~UncertainModel.fingerprint` derived from the distribution
parameters — so :mod:`repro.engine` cache keys extend naturally to UQ
jobs: two semantically identical uncertainty specifications share a
cache entry, any parameter change invalidates it.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.engine.fingerprint import digest
from repro.errors import UQError
from repro.fta.events import Condition, PrimaryFailure
from repro.fta.tree import FaultTree
from repro.stats.distributions import (
    Distribution,
    LogNormal,
    _big_phi_inv,
)

#: The standard normal 95th-percentile quantile, the conventional
#: reference point of error-factor data (EF = p95 / median).
_Z95 = _big_phi_inv(0.95)


def distribution_fingerprint(distribution: Distribution) -> str:
    """Canonical text form of a distribution: class name plus fields.

    Every distribution in :mod:`repro.stats` is a frozen dataclass whose
    fields are floats; the canonical form serializes them through
    :func:`repr`, which round-trips IEEE doubles exactly.  Distributions
    that are not dataclasses cannot be canonicalized and are rejected —
    an opaque token would silently conflate different models.
    """
    if not isinstance(distribution, Distribution):
        raise UQError(
            f"expected a Distribution, got {type(distribution).__name__}")
    if not dataclasses.is_dataclass(distribution):
        raise UQError(
            f"cannot fingerprint non-dataclass distribution "
            f"{type(distribution).__name__}")
    fields = ",".join(
        f"{field.name}={repr(float(getattr(distribution, field.name)))}"
        for field in dataclasses.fields(distribution))
    return f"{type(distribution).__name__}({fields})"


class UncertainModel(Mapping):
    """An immutable, hashable map: basic-event name → distribution.

    Parameters
    ----------
    distributions:
        Mapping from basic-event names to
        :class:`~repro.stats.distributions.Distribution` objects over
        the event's *probability*.  Values outside ``[0, 1]`` that a
        distribution may produce (e.g. a lognormal's upper tail) are
        clipped by the sampling layer.
    name:
        Display name for reports.
    """

    def __init__(self, distributions: Mapping[str, Distribution],
                 name: str = "uncertain"):
        if not distributions:
            raise UQError("uncertain model needs at least one event")
        items = []
        for event, dist in distributions.items():
            if not isinstance(dist, Distribution):
                raise UQError(
                    f"event {event!r} needs a Distribution, "
                    f"got {type(dist).__name__}")
            items.append((str(event), dist))
        # Sorted storage makes iteration (and the fingerprint) canonical
        # regardless of construction order.
        self._items: Tuple[Tuple[str, Distribution], ...] = \
            tuple(sorted(items, key=lambda kv: kv[0]))
        self._index: Dict[str, Distribution] = dict(self._items)
        if len(self._index) != len(items):
            raise UQError("duplicate event names in uncertain model")
        self.name = str(name)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, event: str) -> Distribution:
        return self._index[event]

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _dist in self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def events(self) -> Tuple[str, ...]:
        """Uncertain event names, in canonical (sorted) order."""
        return tuple(name for name, _dist in self._items)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content hash over events and distribution parameters."""
        if self._fingerprint is None:
            body = ";".join(
                f"{name}={distribution_fingerprint(dist)}"
                for name, dist in self._items)
            self._fingerprint = digest("uq-model:" + body)
        return self._fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __eq__(self, other) -> bool:
        if not isinstance(other, UncertainModel):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def updated(self, distributions: Mapping[str, Distribution]
                ) -> "UncertainModel":
        """A copy with some events' distributions replaced or added."""
        merged = dict(self._index)
        merged.update(distributions)
        return UncertainModel(merged, name=self.name)

    def restricted(self, events) -> "UncertainModel":
        """A copy keeping only the given events."""
        wanted = set(events)
        keep = {name: dist for name, dist in self._items
                if name in wanted}
        return UncertainModel(keep, name=self.name)

    def means(self) -> Dict[str, float]:
        """Each event's mean probability (clipped into [0, 1])."""
        return {name: min(1.0, max(0.0, dist.mean))
                for name, dist in self._items}

    def __repr__(self) -> str:
        inside = ", ".join(
            f"{name}~{type(dist).__name__}" for name, dist in self._items)
        return f"UncertainModel({self.name!r}, {inside})"


def lognormal_error_factor(median: float,
                           error_factor: float) -> LogNormal:
    """Lognormal from NRC-handbook style error-factor data.

    ``median`` is the best estimate, ``error_factor`` the ratio of the
    95th percentile to the median (equivalently median to 5th), the
    conventional way reliability databases report rate uncertainty:
    ``sigma = ln(EF) / z_0.95``.
    """
    if median <= 0.0:
        raise UQError(f"median must be > 0, got {median}")
    if error_factor <= 1.0:
        raise UQError(
            f"error factor must be > 1, got {error_factor}")
    return LogNormal(mu=math.log(median),
                     sigma=math.log(error_factor) / _Z95)


def from_error_factors(tree: FaultTree, error_factor: float = 3.0,
                       overrides: Optional[Mapping[str, Distribution]]
                       = None,
                       name: Optional[str] = None) -> UncertainModel:
    """Default epistemic model of a tree: lognormal around each default.

    Every leaf (primary failure or condition) carrying a positive
    default probability gets a :func:`lognormal_error_factor`
    distribution with its default as the median; ``overrides`` replace
    or add per-event distributions (e.g. Beta posteriors from
    :mod:`repro.stats.bayes`).  Leaves without defaults are left out —
    propagation will demand a distribution or default for them.
    """
    distributions: Dict[str, Distribution] = {}
    for event in tree.iter_events():
        if not isinstance(event, (PrimaryFailure, Condition)):
            continue
        p = event.probability
        if p is not None and p > 0.0:
            distributions[event.name] = lognormal_error_factor(
                p, error_factor)
    if overrides:
        distributions.update(overrides)
    if not distributions:
        raise UQError(
            f"tree {tree.name!r} has no leaves with positive default "
            f"probabilities to derive distributions from")
    return UncertainModel(distributions,
                          name=name or f"{tree.name} (EF {error_factor:g})")
