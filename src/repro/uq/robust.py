"""Robust safety optimization: minimize a risk percentile, not a point.

The paper optimizes the expected hazard cost at the *point estimates* of
the basic-event probabilities (Sect. IV-C).  When those estimates carry
epistemic uncertainty, the point-optimal timers may sit on a ridge where
plausible parameter draws blow the risk up.  This module wraps a
:class:`~repro.core.model.SafetyModel` into an
:class:`~repro.opt.problem.Problem` whose objective is a chosen
*percentile* of the cost over the epistemic distribution — e.g. the 95th
percentile — so any optimizer in :mod:`repro.opt` minimizes the
guaranteed-with-confidence risk instead.

Mechanics: for every fault-tree hazard with an
:class:`~repro.uq.spec.UncertainModel`, the uncertain leaf columns are
sampled *once* at construction (common random numbers — the objective
is a deterministic, smooth-as-possible function of the design point);
at each evaluated design point only the parameterized columns are
refilled and the whole sample batch runs through the compiled
evaluator.  A robust objective evaluation therefore costs one batched
quantification per hazard, not ``n_samples`` tree walks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import FaultTreeHazard, SafetyModel
from repro.engine.pool import derive_seed
from repro.errors import UQError
from repro.opt.problem import Problem
from repro.uq.propagate import _checked_evaluator, percentile
from repro.uq.sampling import SAMPLERS, probability_matrix
from repro.uq.spec import UncertainModel


class _UncertainHazard:
    """One hazard's precomputed sample matrix and compiled evaluator."""

    def __init__(self, name: str, hazard: FaultTreeHazard,
                 model: UncertainModel, n_samples: int, seed: int,
                 sampler: str):
        if not isinstance(hazard, FaultTreeHazard):
            raise UQError(
                f"robust objectives need fault-tree hazards; "
                f"{name!r} is a {type(hazard).__name__}")
        overlap = set(model) & set(hazard.assignments)
        if overlap:
            raise UQError(
                f"events {sorted(overlap)} of hazard {name!r} are both "
                f"parameterized and uncertain — decide which they are")
        self.name = name
        self.hazard = hazard
        # Reuse the hazard's own memoized evaluator where it has one —
        # it already carries the hazard's precomputed cut sets, so
        # MOCUS is not re-run and both code paths share one compiled
        # form; fall back to (validated) direct compilation otherwise.
        self.evaluator = hazard._compiled_evaluator() or \
            _checked_evaluator(hazard.tree, hazard.method,
                               hazard.policy)
        leaf_names = self.evaluator.leaf_names
        missing = set(model) - set(leaf_names)
        if missing:
            raise UQError(
                f"uncertain events {sorted(missing)} are not leaves of "
                f"hazard {name!r}")
        # Certain, non-parameterized columns fall back to defaults;
        # parameterized columns get a placeholder overwritten per point.
        defaults = self.evaluator.defaults
        for assigned in hazard.assignments:
            defaults[assigned] = 0.0
        self._matrix = probability_matrix(model, leaf_names, n_samples,
                                          seed=seed, sampler=sampler,
                                          defaults=defaults)
        self._assigned_columns: List[Tuple[int, str]] = [
            (leaf_names.index(leaf), leaf)
            for leaf in hazard.assignments]

    def probability_samples(self, values: Dict[str, float]) -> np.ndarray:
        """Per-sample hazard probabilities at one design point.

        Assigned columns are overwritten in place: every one of them is
        rewritten on every call before the matrix is evaluated, so no
        stale state can leak between design points — and the optimizer
        hot path avoids copying the whole CRN matrix per iteration.
        """
        matrix = self._matrix
        for column, leaf in self._assigned_columns:
            p = float(self.hazard.assignments[leaf](values))
            if not 0.0 <= p <= 1.0:
                raise UQError(
                    f"assignment of {leaf!r} produced probability "
                    f"{p} outside [0, 1]")
            matrix[:, column] = p
        return self.evaluator.evaluate_matrix(matrix)


class RobustCostObjective:
    """The cost percentile over the epistemic distribution, per point.

    Callable on parameter vectors (the :class:`~repro.opt.problem.Problem`
    contract).  Hazards named in ``uncertain`` contribute their sampled
    probability vectors; the rest contribute their point probability to
    every sample — so certain hazards shift the whole distribution
    without widening it.
    """

    def __init__(self, model: SafetyModel,
                 uncertain: Mapping[str, UncertainModel],
                 n_samples: int = 256, seed: int = 0,
                 sampler: str = "lhs", q: float = 95.0):
        if not uncertain:
            raise UQError("robust objective needs at least one "
                          "uncertain hazard")
        if not 0.0 <= q <= 100.0:
            raise UQError(f"percentile must be in [0, 100], got {q}")
        if n_samples < 2:
            raise UQError(f"n_samples must be >= 2, got {n_samples}")
        if sampler not in SAMPLERS:
            raise UQError(
                f"unknown sampler {sampler!r}; "
                f"expected one of {SAMPLERS}")
        unknown = set(uncertain) - set(model.hazards)
        if unknown:
            raise UQError(
                f"uncertain models for unknown hazards "
                f"{sorted(unknown)}; model has "
                f"{sorted(model.hazards)}")
        self.model = model
        self.q = float(q)
        self.n_samples = int(n_samples)
        self.seed = int(seed)
        self.sampler = sampler
        self._sampled: Dict[str, _UncertainHazard] = {}
        for index, name in enumerate(sorted(uncertain)):
            # Hash-derived per-hazard seeds: neighbouring base seeds
            # must not collide with neighbouring hazard indices (as
            # ``seed + index`` would).
            self._sampled[name] = _UncertainHazard(
                name, model.hazards[name], uncertain[name],
                n_samples, derive_seed(seed, index), sampler)

    def cost_samples(self, x: Sequence[float]) -> np.ndarray:
        """The sampled cost distribution at one design point."""
        values = self.model.space.to_dict(tuple(float(v) for v in x))
        total = np.zeros(self.n_samples)
        for name in sorted(self.model.hazards):
            weight = self.model.cost_model.cost_of(name)
            sampled = self._sampled.get(name)
            if sampled is not None:
                total = total + weight * \
                    sampled.probability_samples(values)
            else:
                point = self.model.hazards[name].probability(values)
                total = total + weight * point
        return total

    def __call__(self, x: Sequence[float]) -> float:
        return percentile(self.cost_samples(x), self.q)


def robust_problem(model: SafetyModel,
                   uncertain: Mapping[str, UncertainModel],
                   n_samples: int = 256, seed: int = 0,
                   sampler: str = "lhs", q: float = 95.0,
                   name: Optional[str] = None) -> Problem:
    """Package the robust objective as an optimization problem.

    The returned :class:`~repro.opt.problem.Problem` runs over the
    model's parameter box and counts evaluations like any other, so
    every optimizer in :mod:`repro.opt` (and the zoom procedure) can
    minimize the ``q``-th percentile cost directly::

        problem = robust_problem(model, {COLLISION: uncertain_rates},
                                 q=95.0)
        result = nelder_mead(problem, x0=model.space.defaults)
    """
    objective = RobustCostObjective(model, uncertain,
                                    n_samples=n_samples, seed=seed,
                                    sampler=sampler, q=q)
    label = name or f"{model.name}:cost@p{objective.q:g}"
    return Problem(objective, model.space.box(), name=label)
