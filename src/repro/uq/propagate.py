"""Push epistemic uncertainty through a fault tree in one batch.

The point machinery answers "what is the top-event probability given
*these* leaf probabilities"; this module answers "what is its
*distribution* given what we actually know about the leaves".  One call
builds the ``(n_samples, n_leaves)`` probability matrix from an
:class:`~repro.uq.spec.UncertainModel` and pushes the whole matrix
through a compiled evaluator (:class:`~repro.compile.CompiledTape` /
:class:`~repro.compile.CompiledCutSets`) — tens of thousands of exact
quantifications as a handful of NumPy array sweeps.

Results are **bit-identical** to the scalar per-sample reference loop
(:func:`reference_propagate`) at the same seed: the compiled batch
replays the scalar arithmetic element-wise, and the sampling design is a
pure function of the seed — so shard and worker counts cannot perturb a
published credible interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.compile import compile_tree, supports_compilation
from repro.errors import UQError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.tree import FaultTree
from repro.uq.sampling import probability_matrix
from repro.uq.spec import UncertainModel

#: Percentiles reported by default (median plus a 90 % band).
DEFAULT_PERCENTILES = (5.0, 50.0, 95.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100].

    The one percentile definition used across the UQ subsystem
    (propagation summaries, robust objectives), kept in plain Python so
    its arithmetic is stable and obvious.
    """
    if not 0.0 <= q <= 100.0:
        raise UQError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise UQError("no values to take a percentile of")
    if len(ordered) == 1:
        return ordered[0]
    position = q / 100.0 * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    frac = position - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class PropagationResult:
    """The sampled distribution of a tree's top-event probability."""

    name: str
    samples: Tuple[float, ...]
    seed: int
    sampler: str
    method: str

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((x - m) ** 2 for x in self.samples)
                         / (len(self.samples) - 1))

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile of the sampled distribution."""
        return percentile(self.samples, q)

    def percentiles(self, qs: Sequence[float] = DEFAULT_PERCENTILES
                    ) -> Dict[float, float]:
        """Several percentiles at once, as an ordered mapping."""
        return {float(q): self.percentile(q) for q in qs}

    def interval(self, confidence: float = 0.90) -> Tuple[float, float]:
        """Central credible interval from the sample percentiles."""
        if not 0.0 < confidence < 1.0:
            raise UQError(
                f"confidence must be in (0, 1), got {confidence}")
        tail = (1.0 - confidence) / 2.0 * 100.0
        return (self.percentile(tail), self.percentile(100.0 - tail))

    def exceedance(self, threshold: float) -> float:
        """Empirical ``P(top-event probability > threshold)``."""
        count = sum(1 for v in self.samples if v > threshold)
        return count / len(self.samples)

    def exceedance_curve(self, thresholds: Optional[Sequence[float]]
                         = None) -> List[Tuple[float, float]]:
        """``(threshold, P(Y > threshold))`` pairs — the risk curve.

        Default thresholds span the sampled range on 21 evenly spaced
        points, endpoints included.
        """
        if thresholds is None:
            lo, hi = min(self.samples), max(self.samples)
            if hi <= lo:
                thresholds = [lo]
            else:
                step = (hi - lo) / 20
                thresholds = [lo + i * step for i in range(21)]
        return [(float(t), self.exceedance(float(t)))
                for t in thresholds]

    def summary(self) -> str:
        """A compact multi-line text report."""
        lo, hi = self.interval(0.90)
        lines = [
            f"uncertainty of {self.name!r} "
            f"({self.n_samples} {self.sampler} samples, "
            f"seed {self.seed}, {self.method})",
            f"  mean     : {self.mean:.6g}",
            f"  std      : {self.std:.6g}",
            f"  median   : {self.percentile(50.0):.6g}",
            f"  90% band : [{lo:.6g}, {hi:.6g}]",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON round-trip (engine cache persistence)
    # ------------------------------------------------------------------
    def encode(self) -> Dict[str, Any]:
        """JSON-safe encoding (floats round-trip exactly via repr)."""
        return {"name": self.name, "samples": list(self.samples),
                "seed": self.seed, "sampler": self.sampler,
                "method": self.method}

    @staticmethod
    def decode(encoded: Mapping[str, Any]) -> "PropagationResult":
        """Inverse of :meth:`encode`."""
        return PropagationResult(
            name=encoded["name"],
            samples=tuple(float(v) for v in encoded["samples"]),
            seed=int(encoded["seed"]), sampler=encoded["sampler"],
            method=encoded["method"])

    def __repr__(self) -> str:
        lo, hi = self.interval(0.90)
        return (f"PropagationResult({self.name}: mean={self.mean:.4g}, "
                f"90% [{lo:.4g}, {hi:.4g}], n={self.n_samples})")


def _checked_evaluator(tree: FaultTree, method: str,
                       policy: ConstraintPolicy):
    if not supports_compilation(tree, method):
        raise UQError(
            f"uncertainty propagation needs a compilable method for "
            f"tree {tree.name!r}; {method!r} is not (use 'exact', or a "
            f"cut-set method on a coherent tree)")
    return compile_tree(tree, method, policy)


def propagation_matrix(tree: FaultTree, model: UncertainModel,
                       n_samples: int, seed: int = 0,
                       sampler: str = "lhs", method: str = "exact",
                       policy: ConstraintPolicy =
                       ConstraintPolicy.INDEPENDENT) -> np.ndarray:
    """The exact leaf-probability matrix a propagation run evaluates.

    Exposed so reference loops, benchmarks and engine shards all consume
    *the same* IEEE doubles rather than re-deriving them.
    """
    evaluator = _checked_evaluator(tree, method, policy)
    return probability_matrix(model, evaluator.leaf_names, n_samples,
                              seed=seed, sampler=sampler,
                              defaults=evaluator.defaults)


def propagate(tree: FaultTree, model: UncertainModel,
              n_samples: int = 1000, seed: int = 0,
              sampler: str = "lhs", method: str = "exact",
              policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
              ) -> PropagationResult:
    """Sample the epistemic distribution of the top-event probability.

    Builds the seeded probability matrix and quantifies every row in one
    compiled batch.  Bit-identical to :func:`reference_propagate` at the
    same arguments, and to any row-sharded execution of the same matrix.
    """
    evaluator = _checked_evaluator(tree, method, policy)
    matrix = probability_matrix(model, evaluator.leaf_names, n_samples,
                                seed=seed, sampler=sampler,
                                defaults=evaluator.defaults)
    values = evaluator.evaluate_matrix(matrix)
    return PropagationResult(
        name=tree.name, samples=tuple(float(v) for v in values),
        seed=int(seed), sampler=sampler, method=method)


def reference_propagate(tree: FaultTree, model: UncertainModel,
                        n_samples: int = 1000, seed: int = 0,
                        sampler: str = "lhs", method: str = "exact",
                        policy: ConstraintPolicy =
                        ConstraintPolicy.INDEPENDENT
                        ) -> PropagationResult:
    """The scalar per-sample reference loop.

    Quantifies the *same* seeded matrix row by row through the compiled
    scalar path (plain floats, one dict per sample) — the oracle the
    vectorized :func:`propagate` and the sharded engine job are pinned
    against, and the baseline the UQ benchmark measures speedups over.
    """
    evaluator = _checked_evaluator(tree, method, policy)
    matrix = probability_matrix(model, evaluator.leaf_names, n_samples,
                                seed=seed, sampler=sampler,
                                defaults=evaluator.defaults)
    names = evaluator.leaf_names
    values = [evaluator.scalar(
        {name: float(row[j]) for j, name in enumerate(names)})
        for row in matrix]
    return PropagationResult(
        name=tree.name, samples=tuple(values), seed=int(seed),
        sampler=sampler, method=method)
