"""Monte Carlo estimation of hazard probabilities from fault trees.

Samples every leaf (primary failures, conditions, house-event overrides)
as independent Bernoulli variables and evaluates the tree's structure
function.  This makes *no* rare-event or order-truncation approximation,
so it serves as an independent check of both the standard formula (Eq. 1)
and the exact BDD evaluation — the three must agree within sampling error
(benchmark A3).

Rare hazards need many samples; :func:`monte_carlo_probability` reports a
Wilson confidence interval so callers can see when the budget was too
small rather than trusting a noisy point estimate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.fta.events import Condition, PrimaryFailure
from repro.fta.quantify import probability_map
from repro.fta.tree import FaultTree
from repro.stats.estimation import wilson_ci


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Result of a Monte Carlo hazard-probability run."""

    probability: float
    ci_low: float
    ci_high: float
    occurrences: int
    samples: int
    confidence: float

    def agrees_with(self, analytic: float) -> bool:
        """True when an analytic value falls inside the interval."""
        return self.ci_low <= analytic <= self.ci_high

    def __repr__(self) -> str:
        return (f"MonteCarloEstimate(p={self.probability:.3e} "
                f"[{self.ci_low:.3e}, {self.ci_high:.3e}] "
                f"@{self.confidence:.0%}, n={self.samples})")


def monte_carlo_counts(
        tree: FaultTree,
        probabilities: Optional[Dict[str, float]] = None,
        samples: int = 100_000, seed: int = 0,
        vectorized: bool = True) -> Tuple[int, int]:
    """Count hazard occurrences over ``samples`` draws.

    The raw ``(occurrences, samples)`` pair behind
    :func:`monte_carlo_probability` — exposed so shards run in parallel
    (by :mod:`repro.engine`) can be pooled into one Wilson interval via
    :func:`repro.stats.estimation.pooled_wilson_ci`.

    With ``vectorized`` (the default) the structure function is compiled
    by :mod:`repro.compile` and evaluated on whole blocks of draws —
    bit-packed where the tree allows it.  Draws come from the same
    ``random.Random`` stream in the same order as the interpreted loop,
    so the count is *bit-for-bit identical* for any seed; ``False``
    keeps the original per-sample walk (the reference implementation
    the vectorized path is tested against).
    """
    if samples <= 0:
        raise SimulationError(f"samples must be > 0, got {samples}")
    if vectorized:
        from repro.compile import compile_sampler
        return compile_sampler(tree).counts(probabilities, samples, seed)
    probs = probability_map(tree, probabilities)
    leaf_names = [e.name for e in tree.iter_events()
                  if isinstance(e, (PrimaryFailure, Condition))]
    rng = random.Random(seed)
    occurrences = 0
    assignment: Dict[str, bool] = {}
    for _ in range(samples):
        for name in leaf_names:
            assignment[name] = rng.random() < probs[name]
        if tree.evaluate(assignment):
            occurrences += 1
    return occurrences, samples


def monte_carlo_probability(
        tree: FaultTree,
        probabilities: Optional[Dict[str, float]] = None,
        samples: int = 100_000, seed: int = 0,
        confidence: float = 0.95, shards: int = 1,
        workers: int = 1) -> MonteCarloEstimate:
    """Estimate the hazard probability of ``tree`` by direct sampling.

    Parameters
    ----------
    tree:
        The fault tree (coherent or not).
    probabilities:
        Leaf probability overrides merged over event defaults.
    samples:
        Number of independent leaf-assignment samples.
    seed:
        Seed of the private RNG; runs are reproducible.
    confidence:
        Confidence level of the Wilson interval.
    shards:
        Split the sample budget into this many independently seeded
        shards (engine-backed fast path).  ``shards=1`` keeps the classic
        single-stream sampler; sharded runs draw a different (but
        deterministic, seed-derived) sample stream, so their estimates
        agree with the single-stream one within the confidence interval
        rather than bit-for-bit.
    workers:
        Worker processes used to run the shards (only meaningful with
        ``shards > 1``).
    """
    if samples <= 0:
        raise SimulationError(f"samples must be > 0, got {samples}")
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    if shards > samples:
        raise SimulationError(
            f"cannot split {samples} samples into {shards} shards")
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if shards == 1 and workers == 1:
        occurrences, samples = monte_carlo_counts(
            tree, probabilities, samples, seed)
        ci_low, ci_high = wilson_ci(occurrences, samples, confidence)
        return MonteCarloEstimate(
            probability=occurrences / samples, ci_low=ci_low,
            ci_high=ci_high, occurrences=occurrences, samples=samples,
            confidence=confidence)
    # Engine-backed path: deterministic per-shard seeding, parallel
    # execution, one pooled Wilson interval.  Imported lazily to keep
    # repro.sim free of an engine dependency at import time.
    from repro.engine.jobs import MonteCarloJob
    from repro.engine.pool import WorkerPool
    job = MonteCarloJob(tree, probabilities=probabilities,
                        samples=samples, seed=seed, confidence=confidence,
                        shards=shards)
    return job.run(WorkerPool(workers))


def monte_carlo_cut_set_frequencies(
        tree: FaultTree,
        probabilities: Optional[Dict[str, float]] = None,
        samples: int = 100_000, seed: int = 0) -> Dict[str, float]:
    """Estimate, per primary failure, how often it participates in a hazard.

    For each sample where the hazard occurs, every true leaf is credited.
    The result maps leaf names to their hazard-conditional occurrence
    frequency — a sampling analogue of Fussell–Vesely importance.
    """
    if samples <= 0:
        raise SimulationError(f"samples must be > 0, got {samples}")
    probs = probability_map(tree, probabilities)
    leaf_names = [e.name for e in tree.iter_events()
                  if isinstance(e, (PrimaryFailure, Condition))]
    rng = random.Random(seed)
    hazard_count = 0
    credit: Dict[str, int] = {name: 0 for name in leaf_names}
    assignment: Dict[str, bool] = {}
    for _ in range(samples):
        for name in leaf_names:
            assignment[name] = rng.random() < probs[name]
        if tree.evaluate(assignment):
            hazard_count += 1
            for name in leaf_names:
                if assignment[name]:
                    credit[name] += 1
    if hazard_count == 0:
        return {name: 0.0 for name in leaf_names}
    return {name: count / hazard_count for name, count in credit.items()}
