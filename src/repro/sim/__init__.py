"""Simulation substrate: discrete-event kernel and Monte Carlo engine.

Two validation paths for the analytic machinery:

* :mod:`repro.sim.kernel` — a discrete-event simulation kernel used by the
  Elbtunnel traffic simulator (:mod:`repro.elbtunnel.simulation`) to
  measure hazard frequencies directly from simulated traffic,
* :mod:`repro.sim.montecarlo` — samples fault tree leaves as independent
  Bernoulli variables and estimates the hazard probability with confidence
  intervals (cross-checking the formulas of Sect. II-C against sampling).
"""

from repro.sim.kernel import Process, Simulator
from repro.sim.montecarlo import (
    MonteCarloEstimate,
    monte_carlo_counts,
    monte_carlo_probability,
)

__all__ = [
    "Simulator",
    "Process",
    "MonteCarloEstimate",
    "monte_carlo_counts",
    "monte_carlo_probability",
]
