"""Simulation substrate: discrete-event kernel, batching, Monte Carlo.

Two validation paths for the analytic machinery, plus the batch layer
that scales them:

* :mod:`repro.sim.kernel` — a discrete-event simulation kernel used by the
  Elbtunnel traffic simulator (:mod:`repro.elbtunnel.simulation`) to
  measure hazard frequencies directly from simulated traffic,
* :mod:`repro.sim.batch` — multi-replication batch execution:
  deterministic per-replication seeds, structure-of-arrays counter
  storage and replication statistics (the substrate of
  :mod:`repro.elbtunnel.batch` and the engine's ``SimulationJob``),
* :mod:`repro.sim.montecarlo` — samples fault tree leaves as independent
  Bernoulli variables and estimates the hazard probability with confidence
  intervals (cross-checking the formulas of Sect. II-C against sampling).
"""

from repro.sim.batch import (
    CounterMatrix,
    between_replication_variance,
    per_replication_wilson,
    replication_seeds,
)
from repro.sim.kernel import Process, Simulator
from repro.sim.montecarlo import (
    MonteCarloEstimate,
    monte_carlo_counts,
    monte_carlo_probability,
)

__all__ = [
    "Simulator",
    "Process",
    "CounterMatrix",
    "replication_seeds",
    "between_replication_variance",
    "per_replication_wilson",
    "MonteCarloEstimate",
    "monte_carlo_counts",
    "monte_carlo_probability",
]
