"""Multi-replication batch execution for discrete-event simulations.

Stochastic validation needs many independent replications of the same
simulation, and running them one :func:`simulate`-call at a time leaves
everything on the table: counters live in per-run Python objects, seeds
are managed by hand, and statistics are recomputed per run.  This module
provides the replication-batch substrate the Elbtunnel batch engine
(:mod:`repro.elbtunnel.batch`) and the engine's ``SimulationJob`` build
on:

* :func:`replication_seeds` — deterministic, well-separated per-replication
  seeds that depend only on ``(base seed, replication index)``, never on
  the replication count or on how a batch is sharded across workers;
* :class:`CounterMatrix` — a structure-of-arrays counter store: one
  preallocated NumPy ``int64`` column per counter, one row per
  replication, so batch statistics are vectorized reductions instead of
  attribute walks over result objects;
* :func:`between_replication_variance` / :func:`per_replication_wilson` —
  the standard replication statistics (between-run variance of a derived
  statistic, per-run Wilson intervals) used to report batch results.

The contract every batch runner built on this module keeps: replication
``r`` of a batch is **bit-identical** to the scalar run at seed
``replication_seeds(seed, n)[r]`` — batching changes how fast the runs
execute, never what they compute.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.stats.estimation import wilson_ci


def replication_seeds(seed: int, count: int) -> List[int]:
    """Deterministic per-replication seeds for a batch of ``count`` runs.

    Replication 0 runs the base seed itself, so a batch of one *is* the
    scalar run.  Later replications get hash-derived seeds (independent
    of ``PYTHONHASHSEED``) that depend only on ``(seed, index)``:
    growing a study keeps its prefix, and any sharding of the index
    range across workers reproduces the same runs by construction.
    """
    if count < 1:
        raise SimulationError(
            f"replication count must be >= 1, got {count}")
    seeds = [int(seed)]
    for index in range(1, count):
        raw = hashlib.sha256(
            f"sim-replication:{seed}:{index}".encode()).digest()
        seeds.append(int.from_bytes(raw[:8], "big"))
    return seeds


class CounterMatrix:
    """Structure-of-arrays integer counters: one row per replication.

    Columns are preallocated NumPy ``int64`` arrays, so pooled counts,
    per-replication fractions and between-replication spreads are single
    vectorized reductions.  Rows round-trip losslessly: ``row(r)``
    returns exactly the Python integers stored by ``set_row(r, ...)``.
    """

    def __init__(self, fields: Sequence[str], replications: int):
        if not fields:
            raise SimulationError("counter matrix needs at least one field")
        if replications < 1:
            raise SimulationError(
                f"replication count must be >= 1, got {replications}")
        self.fields: Tuple[str, ...] = tuple(str(name) for name in fields)
        if len(set(self.fields)) != len(self.fields):
            raise SimulationError(
                f"counter fields must be unique, got {self.fields}")
        self.replications = int(replications)
        self._columns: Dict[str, np.ndarray] = {
            name: np.zeros(self.replications, dtype=np.int64)
            for name in self.fields}

    def set_row(self, replication: int, values: Sequence[int]) -> None:
        """Store one replication's counters (in ``fields`` order)."""
        if len(values) != len(self.fields):
            raise SimulationError(
                f"expected {len(self.fields)} counters, got {len(values)}")
        for name, value in zip(self.fields, values):
            self._columns[name][replication] = value

    def row(self, replication: int) -> Tuple[int, ...]:
        """One replication's counters as plain Python integers."""
        return tuple(int(self._columns[name][replication])
                     for name in self.fields)

    def rows(self) -> Iterator[Tuple[int, ...]]:
        """All replication rows, in replication order."""
        for replication in range(self.replications):
            yield self.row(replication)

    def column(self, name: str) -> np.ndarray:
        """The per-replication values of one counter (a live view)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SimulationError(
                f"unknown counter {name!r}; expected one of "
                f"{self.fields}") from None

    def totals(self) -> Dict[str, int]:
        """Pooled (summed over replications) value of every counter."""
        return {name: int(self._columns[name].sum())
                for name in self.fields}

    def __len__(self) -> int:
        return self.replications


def between_replication_variance(values: Sequence[float]) -> float:
    """Unbiased sample variance of a per-replication statistic.

    The spread *between* independent replications — the quantity a
    replication study reports next to the pooled point estimate.  A
    single replication carries no spread information; returns ``0.0``.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1:
        raise SimulationError(
            f"expected a 1-d sequence of values, got shape {data.shape}")
    if data.size < 2:
        return 0.0
    return float(data.var(ddof=1))


def per_replication_wilson(successes: Sequence[int], trials: Sequence[int],
                           confidence: float = 0.95
                           ) -> List[Tuple[float, float]]:
    """Wilson interval of ``successes[r] / trials[r]`` per replication.

    Replications with zero trials get the degenerate ``(0.0, 1.0)``
    interval (no data constrains the proportion).
    """
    if len(successes) != len(trials):
        raise SimulationError(
            f"got {len(successes)} success counts for "
            f"{len(trials)} trial counts")
    intervals: List[Tuple[float, float]] = []
    for won, ran in zip(successes, trials):
        if ran <= 0:
            intervals.append((0.0, 1.0))
        else:
            intervals.append(wilson_ci(int(won), int(ran), confidence))
    return intervals
