"""A small discrete-event simulation kernel.

Events are callbacks on a time-ordered heap with deterministic FIFO
tie-breaking, so simulations are exactly reproducible for a fixed seed.
Generator-based processes (`yield delay`) are supported for modelling
entities with their own timelines (vehicles driving through zones); plain
callback scheduling covers everything else (timer expirations, sensor
pulses).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, List, Tuple

from repro.errors import SimulationError

Action = Callable[[], None]


class Process:
    """A generator-driven simulation process.

    The generator yields non-negative delays; the kernel resumes it after
    each delay until it finishes.  ``alive`` turns false on completion or
    cancellation.
    """

    def __init__(self, simulator: "Simulator",
                 generator: Generator[float, None, None], name: str = ""):
        self._simulator = simulator
        self._generator = generator
        self.name = name
        self.alive = True

    def cancel(self) -> None:
        """Stop the process; pending resumptions become no-ops."""
        if self.alive:
            self.alive = False
            self._generator.close()

    def _step(self) -> None:
        if not self.alive:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.alive = False
            return
        if delay is None or delay < 0:
            self.alive = False
            raise SimulationError(
                f"process {self.name or id(self)} yielded invalid delay "
                f"{delay!r}")
        self._simulator.schedule(delay, self._step)


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: List[Tuple[float, int, Action]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, action: Action) -> None:
        """Run ``action`` after ``delay`` time units (>= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past "
                                  f"(delay={delay})")
        heapq.heappush(self._queue,
                       (self._now + delay, next(self._sequence), action))

    def schedule_at(self, time: float, action: Action) -> None:
        """Run ``action`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})")
        heapq.heappush(self._queue,
                       (time, next(self._sequence), action))

    def process(self, generator: Generator[float, None, None],
                name: str = "", delay: float = 0.0) -> Process:
        """Start a generator process after an optional delay."""
        proc = Process(self, generator, name)
        self.schedule(delay, proc._step)
        return proc

    def run_until(self, end_time: float) -> None:
        """Execute events in order until the clock passes ``end_time``.

        Events scheduled exactly at ``end_time`` are executed; the clock
        finishes at ``end_time``.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is before now ({self._now})")
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            while self._queue and self._queue[0][0] <= end_time:
                time, _seq, action = heapq.heappop(self._queue)
                self._now = time
                action()
                self.events_executed += 1
            self._now = end_time
        finally:
            self._running = False

    def run(self, max_events: int = 1_000_000) -> None:
        """Execute all pending events (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; "
                        "possible runaway simulation")
                time, _seq, action = heapq.heappop(self._queue)
                self._now = time
                action()
                executed += 1
                self.events_executed += 1
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of not-yet-executed events."""
        return len(self._queue)
