"""Multi-start wrapper: run a local optimizer from several start points.

Local methods (gradient descent, Nelder–Mead) only find the nearest local
minimum; restarting them from a coarse grid or random starts and keeping
the best result is the cheapest reliable globalization on the smooth,
low-dimensional cost functions typical of safety optimization.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.opt.problem import OptResult, Problem, Vector, best_of

LocalOptimizer = Callable[..., OptResult]


def multistart(problem: Problem, local: LocalOptimizer,
               starts: Optional[List[Vector]] = None,
               random_starts: int = 0, grid_starts: int = 0,
               seed: int = 0, **local_options) -> OptResult:
    """Run ``local(problem, x0=start, **local_options)`` from many starts.

    Parameters
    ----------
    problem:
        Counted objective over a box.
    local:
        A local optimizer taking ``x0`` (e.g.
        :func:`repro.opt.gradient.gradient_descent` or
        :func:`repro.opt.neldermead.nelder_mead`).
    starts:
        Explicit start points (clipped onto the box).
    random_starts:
        Number of additional uniform random starts.
    grid_starts:
        If > 1, adds a full-factorial grid with this many points per
        dimension as start points.
    seed:
        Seed for the random starts.
    """
    box = problem.box
    points: List[Vector] = []
    if starts:
        points.extend(box.clip(s) for s in starts)
    if grid_starts > 1:
        points.extend(box.grid(grid_starts))
    if random_starts > 0:
        rng = random.Random(seed)
        points.extend(box.sample(rng) for _ in range(random_starts))
    if not points:
        points = [box.center]

    results: List[OptResult] = []
    for start in points:
        results.append(local(problem, x0=start, **local_options))
    best = best_of(results)
    total_evals = sum(r.evaluations for r in results)
    return OptResult(
        x=best.x, fun=best.fun, evaluations=total_evals,
        iterations=len(results), converged=best.converged,
        method=f"multistart({best.method})",
        message=f"{len(points)} starts, best from start #"
                f"{results.index(best)}",
        history=[(r.x, r.fun) for r in results])
