"""Bridge to scipy.optimize for cross-checking our own algorithms.

The library's native optimizers are self-contained; this module exposes
the equivalent scipy solvers behind the same :class:`OptResult` interface
so tests and benchmarks can confirm both stacks agree on the Elbtunnel
optimum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize as _sciopt

from repro.opt.problem import OptResult, Problem, Vector


def scipy_minimize(problem: Problem, x0: Optional[Vector] = None,
                   method: str = "L-BFGS-B", **options) -> OptResult:
    """Minimize with :func:`scipy.optimize.minimize` on the problem's box.

    ``method`` must support bounds (L-BFGS-B, Nelder-Mead, Powell, TNC,
    trust-constr, ...).
    """
    box = problem.box
    start = np.asarray(box.clip(x0) if x0 is not None else box.center,
                       dtype=float)
    start_evals = problem.evaluations

    def objective(x: np.ndarray) -> float:
        return problem(box.clip(tuple(float(v) for v in x)))

    # Safety cost functions live at ~1e-3 scales; scipy's default
    # tolerances (e.g. L-BFGS-B pgtol = 1e-5) would stop immediately.
    if method == "L-BFGS-B":
        options.setdefault("ftol", 1e-15)
        options.setdefault("gtol", 1e-12)
    elif method == "Nelder-Mead":
        options.setdefault("xatol", 1e-8)
        options.setdefault("fatol", 1e-12)
    result = _sciopt.minimize(objective, start, method=method,
                              bounds=box.bounds, options=options or None)
    x = box.clip(tuple(float(v) for v in np.atleast_1d(result.x)))
    return OptResult(
        x=x, fun=float(result.fun),
        evaluations=problem.evaluations - start_evals,
        iterations=int(getattr(result, "nit", 0) or 0),
        converged=bool(result.success), method=f"scipy:{method}",
        message=str(result.message))


def scipy_differential_evolution(problem: Problem, seed: int = 0,
                                 **options) -> OptResult:
    """Minimize with :func:`scipy.optimize.differential_evolution`."""
    box = problem.box
    start_evals = problem.evaluations

    def objective(x) -> float:
        return problem(box.clip(tuple(float(v) for v in x)))

    result = _sciopt.differential_evolution(
        objective, bounds=box.bounds, seed=seed, **options)
    x = box.clip(tuple(float(v) for v in np.atleast_1d(result.x)))
    return OptResult(
        x=x, fun=float(result.fun),
        evaluations=problem.evaluations - start_evals,
        iterations=int(getattr(result, "nit", 0) or 0),
        converged=bool(result.success),
        method="scipy:differential_evolution",
        message=str(result.message))
