"""Projected gradient descent with numeric gradients.

The paper calls the gradient method "the most simple" nonlinear-programming
approach: "finds local minima by calculating gradients iteratively and
always following the steepest descent" (Sect. III-B).  This implementation
adds the two ingredients needed to make that reliable on a compact box:

* central finite-difference gradients (no analytic derivatives required),
* Armijo backtracking line search along the *projected* descent direction,
  so iterates never leave the feasible box.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.opt.problem import OptResult, Problem, Vector


def _numeric_gradient(problem: Problem, x: Vector, fx: float,
                      rel_step: float = 1e-6) -> Vector:
    """Central differences, falling back to one-sided at box walls."""
    grad = []
    for i, (lo, hi) in enumerate(problem.box.bounds):
        h = max(rel_step * (hi - lo), 1e-12)
        up = list(x)
        down = list(x)
        up[i] = min(x[i] + h, hi)
        down[i] = max(x[i] - h, lo)
        span = up[i] - down[i]
        if span <= 0.0:
            grad.append(0.0)
            continue
        f_up = problem(tuple(up)) if up[i] != x[i] else fx
        f_down = problem(tuple(down)) if down[i] != x[i] else fx
        grad.append((f_up - f_down) / span)
    return tuple(grad)


def gradient_descent(problem: Problem, x0: Optional[Vector] = None,
                     step0: float = 1.0, tol: float = 1e-10,
                     max_iterations: int = 500,
                     armijo_c: float = 1e-4,
                     backtrack: float = 0.5,
                     max_backtracks: int = 40) -> OptResult:
    """Minimize by projected steepest descent with Armijo backtracking.

    Parameters
    ----------
    problem:
        The counted objective over its box.
    x0:
        Start point; defaults to the box centre.
    step0:
        Initial step, in units of the largest box width.
    tol:
        Stop when the objective improvement falls below ``tol`` (absolute)
        or the projected step stalls.
    """
    box = problem.box
    x = box.clip(x0) if x0 is not None else box.center
    start_evals = problem.evaluations
    fx = problem(x)
    history: List[Tuple[Vector, float]] = [(x, fx)]
    scale = max(box.widths)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad = _numeric_gradient(problem, x, fx)
        grad_norm = sum(g * g for g in grad) ** 0.5
        if grad_norm == 0.0:
            converged = True
            break
        direction = tuple(-g / grad_norm for g in grad)
        step = step0 * scale
        improved = False
        for _ in range(max_backtracks):
            candidate = box.clip(tuple(
                xi + step * di for xi, di in zip(x, direction)))
            if candidate == x:
                step *= backtrack
                continue
            f_candidate = problem(candidate)
            # Armijo: require a decrease proportional to the actual move.
            moved = sum((a - b) ** 2
                        for a, b in zip(candidate, x)) ** 0.5
            if f_candidate <= fx - armijo_c * grad_norm * moved:
                improvement = fx - f_candidate
                x, fx = candidate, f_candidate
                history.append((x, fx))
                improved = True
                if improvement < tol:
                    converged = True
                break
            step *= backtrack
        if not improved:
            # No acceptable step: we are at a (projected) stationary point.
            converged = True
            break
        if converged:
            break
    return OptResult(
        x=x, fun=fx, evaluations=problem.evaluations - start_evals,
        iterations=iterations, converged=converged,
        method="gradient_descent", history=history)
