"""Scenario-based stochastic programming over safety cost functions.

The paper's future work (Sect. V): "an interesting connection is to
reduce the whole optimization problem to a problem of stochastic
programming, which is a branch of mathematical optimization that deals
with probability distributions."

This module implements the two standard single-stage formulations:

* **Expected value**: minimize ``E_w[f(x; w)]`` over weighted scenarios
  ``w`` (environments the system may face: traffic levels, component
  ages, weather regimes);
* **Conditional value at risk (CVaR)**: minimize the expected cost of
  the worst ``(1 - alpha)`` tail across scenarios — the risk-averse
  operator's objective, which refuses configurations that are great on
  average but catastrophic in some environment.

A robust (worst-case) evaluation is included for comparison.  Scenarios
are plain objective functions, so any :class:`SafetyModel` cost works:
``lambda x: model_for(env).cost(x)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import OptimizationError
from repro.opt.neldermead import nelder_mead
from repro.opt.problem import Box, OptResult, Problem, Vector

Objective = Callable[[Vector], float]


@dataclass(frozen=True)
class ScenarioObjective:
    """One environment: its objective and its occurrence weight."""

    name: str
    objective: Objective
    weight: float

    def __post_init__(self):
        if self.weight < 0.0:
            raise OptimizationError(
                f"scenario {self.name!r} weight must be >= 0, "
                f"got {self.weight}")


def _normalized(scenarios: Sequence[ScenarioObjective]
                ) -> List[ScenarioObjective]:
    if not scenarios:
        raise OptimizationError("need at least one scenario")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise OptimizationError(f"duplicate scenario names: {names}")
    total = sum(s.weight for s in scenarios)
    if total <= 0.0:
        raise OptimizationError("scenario weights must not sum to zero")
    return [ScenarioObjective(s.name, s.objective, s.weight / total)
            for s in scenarios]


def expected_cost(scenarios: Sequence[ScenarioObjective],
                  x: Vector) -> float:
    """``E_w[f(x; w)]`` over normalized scenario weights."""
    normalized = _normalized(scenarios)
    return sum(s.weight * s.objective(x) for s in normalized)


def worst_case_cost(scenarios: Sequence[ScenarioObjective],
                    x: Vector) -> float:
    """``max_w f(x; w)`` — the robust-optimization evaluation."""
    normalized = _normalized(scenarios)
    return max(s.objective(x) for s in normalized)


def cvar_cost(scenarios: Sequence[ScenarioObjective], x: Vector,
              alpha: float = 0.8) -> float:
    """Conditional value at risk at level ``alpha``.

    The expected cost over the worst ``(1 - alpha)`` probability mass of
    scenarios.  ``alpha = 0`` gives the plain expectation, ``alpha -> 1``
    approaches the worst case.
    """
    if not 0.0 <= alpha < 1.0:
        raise OptimizationError(f"alpha must be in [0, 1), got {alpha}")
    normalized = _normalized(scenarios)
    evaluated = sorted(((s.objective(x), s.weight) for s in normalized),
                       key=lambda pair: pair[0], reverse=True)
    tail = 1.0 - alpha
    remaining = tail
    accumulated = 0.0
    for value, weight in evaluated:
        take = min(weight, remaining)
        accumulated += take * value
        remaining -= take
        if remaining <= 1e-15:
            break
    return accumulated / tail


def optimize_stochastic(scenarios: Sequence[ScenarioObjective], box: Box,
                        formulation: str = "expected",
                        alpha: float = 0.8,
                        optimizer: Callable[..., OptResult] = nelder_mead,
                        **optimizer_options) -> OptResult:
    """Minimize a stochastic-programming formulation over the box.

    Parameters
    ----------
    scenarios:
        The weighted environments.
    box:
        The feasible parameter box.
    formulation:
        ``"expected"``, ``"cvar"`` or ``"worst_case"``.
    alpha:
        CVaR level (only used by the ``cvar`` formulation).
    optimizer:
        Any box optimizer from :mod:`repro.opt` (Nelder–Mead default).
    """
    normalized = _normalized(scenarios)
    if formulation == "expected":
        scalar = lambda x: expected_cost(normalized, x)       # noqa: E731
    elif formulation == "cvar":
        scalar = lambda x: cvar_cost(normalized, x, alpha)    # noqa: E731
    elif formulation == "worst_case":
        scalar = lambda x: worst_case_cost(normalized, x)     # noqa: E731
    else:
        raise OptimizationError(
            f"unknown formulation {formulation!r}; expected 'expected', "
            "'cvar' or 'worst_case'")
    problem = Problem(scalar, box, name=f"stochastic:{formulation}")
    result = optimizer(problem, **optimizer_options)
    return OptResult(
        x=result.x, fun=result.fun, evaluations=result.evaluations,
        iterations=result.iterations, converged=result.converged,
        method=f"stochastic:{formulation}({result.method})",
        message=result.message, history=result.history)


def value_of_stochastic_solution(
        scenarios: Sequence[ScenarioObjective], box: Box,
        optimizer: Callable[..., OptResult] = nelder_mead,
        **optimizer_options) -> Tuple[float, OptResult, OptResult]:
    """The classic VSS: how much does modelling uncertainty buy?

    Compares the expected cost of (a) the stochastic solution against
    (b) the solution obtained by optimizing the *mean* scenario only
    (the deterministic "expected-value problem"), both evaluated under
    the true scenario distribution.  Returns ``(vss, stochastic_result,
    deterministic_result)`` with ``vss >= 0`` up to optimizer noise.
    """
    normalized = _normalized(scenarios)
    stochastic = optimize_stochastic(normalized, box, "expected",
                                     optimizer=optimizer,
                                     **optimizer_options)
    # Deterministic counterpart: the single highest-weight scenario.
    nominal = max(normalized, key=lambda s: s.weight)
    nominal_problem = Problem(nominal.objective, box, name="nominal")
    deterministic = optimizer(nominal_problem, **optimizer_options)
    deterministic_under_truth = expected_cost(normalized,
                                              deterministic.x)
    vss = deterministic_under_truth - stochastic.fun
    return vss, stochastic, deterministic
