"""Exhaustive grid search and the paper's "plot and zoom" refinement.

Sect. III-B: "If there are only two free variables and the functions are
smooth, then the solutions may be found by using a 3D plot of the cost
function and zooming into it ... It is possible to test large number of
combinations in very short time."  :func:`zoom_search` is the algorithmic
form of that procedure: evaluate a full-factorial grid, re-centre a shrunk
box on the best point, repeat until the box is smaller than the tolerance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import OptimizationError
from repro.opt.problem import Box, OptResult, Problem, Vector


def grid_search(problem: Problem, points_per_dim: int = 11,
                box: Optional[Box] = None) -> OptResult:
    """Evaluate a full-factorial grid; return the best point found."""
    box = box or problem.box
    start_evals = problem.evaluations
    best_x: Optional[Vector] = None
    best_f = float("inf")
    for point in box.grid(points_per_dim):
        value = problem(point)
        if value < best_f:
            best_f, best_x = value, point
    assert best_x is not None
    return OptResult(
        x=best_x, fun=best_f,
        evaluations=problem.evaluations - start_evals, iterations=1,
        converged=True, method="grid",
        message=f"{points_per_dim} points per dimension")


def zoom_search(problem: Problem, points_per_dim: int = 11,
                shrink: float = 0.5, tol: float = 1e-6,
                max_rounds: int = 60) -> OptResult:
    """Iterated grid refinement (the paper's plot-and-zoom).

    Parameters
    ----------
    problem:
        The counted objective over its box.
    points_per_dim:
        Grid resolution per round.
    shrink:
        Relative box size after each round (0.5 halves every interval).
    tol:
        Stop when every interval is narrower than ``tol``.
    max_rounds:
        Hard round cap.
    """
    if not 0.0 < shrink < 1.0:
        raise OptimizationError(f"shrink must be in (0, 1), got {shrink}")
    box = problem.box
    start_evals = problem.evaluations
    best_x: Optional[Vector] = None
    best_f = float("inf")
    history: List[Tuple[Vector, float]] = []
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        result = grid_search(problem, points_per_dim, box)
        if result.fun < best_f:
            best_f, best_x = result.fun, result.x
        history.append((best_x, best_f))
        if max(box.widths) < tol:
            break
        box = box.shrink_around(best_x, shrink)
    assert best_x is not None
    converged = max(box.widths) < tol
    return OptResult(
        x=best_x, fun=best_f,
        evaluations=problem.evaluations - start_evals, iterations=rounds,
        converged=converged, method="zoom",
        message=f"final box widths {tuple(f'{w:.2g}' for w in box.widths)}",
        history=history)
