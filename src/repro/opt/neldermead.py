"""Nelder–Mead simplex search, box-constrained by projection.

A robust derivative-free local method for the "more elaborate and
efficient algorithms" the paper alludes to (Sect. III-B).  Vertices are
clipped onto the feasible box after every reflection/expansion step; the
simplex is initialized relative to the box widths so the method behaves
sensibly for badly scaled timer/tolerance domains.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.opt.problem import OptResult, Problem, Vector


def nelder_mead(problem: Problem, x0: Optional[Vector] = None,
                initial_scale: float = 0.1, f_tol: float = 1e-12,
                x_tol: float = 1e-9, max_iterations: int = 2000,
                alpha: float = 1.0, gamma: float = 2.0,
                rho: float = 0.5, sigma: float = 0.5) -> OptResult:
    """Minimize a problem with the Nelder–Mead simplex algorithm.

    Parameters
    ----------
    problem:
        Counted objective over a box.
    x0:
        Start point (box centre by default).
    initial_scale:
        Initial simplex edge length as a fraction of each box width.
    f_tol, x_tol:
        Convergence thresholds on the simplex's value spread and extent.
    alpha, gamma, rho, sigma:
        Reflection, expansion, contraction and shrink coefficients.
    """
    box = problem.box
    n = box.dim
    start = box.clip(x0) if x0 is not None else box.center
    start_evals = problem.evaluations

    # Initial simplex: start point plus one offset vertex per dimension.
    simplex: List[Vector] = [start]
    for i in range(n):
        lo, hi = box.bounds[i]
        offset = initial_scale * (hi - lo)
        vertex = list(start)
        vertex[i] = vertex[i] + offset if vertex[i] + offset <= hi \
            else vertex[i] - offset
        simplex.append(box.clip(tuple(vertex)))
    values = [problem(v) for v in simplex]

    history: List[Tuple[Vector, float]] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        order = sorted(range(len(simplex)), key=lambda i: values[i])
        simplex = [simplex[i] for i in order]
        values = [values[i] for i in order]
        history.append((simplex[0], values[0]))

        f_spread = values[-1] - values[0]
        x_extent = max(
            max(abs(v[i] - simplex[0][i]) for v in simplex)
            for i in range(n))
        if f_spread <= f_tol and x_extent <= x_tol:
            converged = True
            break

        centroid = tuple(
            sum(v[i] for v in simplex[:-1]) / n for i in range(n))
        worst = simplex[-1]
        reflected = box.clip(tuple(
            c + alpha * (c - w) for c, w in zip(centroid, worst)))
        f_reflected = problem(reflected)

        if values[0] <= f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
            continue
        if f_reflected < values[0]:
            expanded = box.clip(tuple(
                c + gamma * (r - c) for c, r in zip(centroid, reflected)))
            f_expanded = problem(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
            continue
        # Contraction (outside if the reflection improved on the worst).
        if f_reflected < values[-1]:
            contracted = box.clip(tuple(
                c + rho * (r - c) for c, r in zip(centroid, reflected)))
        else:
            contracted = box.clip(tuple(
                c + rho * (w - c) for c, w in zip(centroid, worst)))
        f_contracted = problem(contracted)
        if f_contracted < min(f_reflected, values[-1]):
            simplex[-1], values[-1] = contracted, f_contracted
            continue
        # Shrink towards the best vertex.
        best = simplex[0]
        for i in range(1, len(simplex)):
            simplex[i] = box.clip(tuple(
                b + sigma * (v - b) for b, v in zip(best, simplex[i])))
            values[i] = problem(simplex[i])

    best_index = min(range(len(simplex)), key=lambda i: values[i])
    return OptResult(
        x=simplex[best_index], fun=values[best_index],
        evaluations=problem.evaluations - start_evals,
        iterations=iterations, converged=converged, method="nelder_mead",
        history=history)
