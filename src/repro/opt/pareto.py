"""Multi-objective analysis: Pareto fronts over opposed hazards.

"In practice for most systems safety is a tradeoff between different
undesired events" (Sect. III) — the Elbtunnel's collision risk and false-
alarm risk cannot both be minimized.  A single cost function collapses the
trade-off with fixed weights; this module exposes the whole trade-off:

* :func:`pareto_filter` keeps the non-dominated points of a sampled set,
* :func:`weighted_sum_sweep` scans weight ratios, re-optimizing the scalar
  cost each time — tracing the convex part of the Pareto front and showing
  how sensitive the "optimal" configuration is to the (ethically fraught)
  cost-of-a-hazard figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import OptimizationError
from repro.opt.neldermead import nelder_mead
from repro.opt.problem import Box, OptResult, Problem, Vector

MultiObjective = Callable[[Vector], Tuple[float, ...]]


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration with its vector of objective values."""

    x: Vector
    objectives: Tuple[float, ...]

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is no worse everywhere and better somewhere."""
        if len(self.objectives) != len(other.objectives):
            raise OptimizationError(
                "cannot compare points with different objective counts")
        no_worse = all(a <= b for a, b in
                       zip(self.objectives, other.objectives))
        better = any(a < b for a, b in
                     zip(self.objectives, other.objectives))
        return no_worse and better


def pareto_filter(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Return the non-dominated subset, sorted by the first objective."""
    front: List[ParetoPoint] = []
    for candidate in points:
        if any(other.dominates(candidate) for other in points
               if other is not candidate):
            continue
        if any(f.objectives == candidate.objectives and f.x == candidate.x
               for f in front):
            continue
        front.append(candidate)
    front.sort(key=lambda p: p.objectives)
    return front


def sample_front(objectives: MultiObjective, box: Box,
                 points_per_dim: int = 21) -> List[ParetoPoint]:
    """Evaluate the objective vector on a grid and Pareto-filter it."""
    points = [ParetoPoint(x, tuple(objectives(x)))
              for x in box.grid(points_per_dim)]
    return pareto_filter(points)


def weighted_sum_sweep(objectives: MultiObjective, box: Box,
                       weights: Sequence[Tuple[float, ...]],
                       optimizer: Callable[..., OptResult] = nelder_mead,
                       **optimizer_options) -> List[ParetoPoint]:
    """Optimize a weighted sum of the objectives for each weight vector.

    Each weight vector produces one (convex-front) Pareto point; the
    returned list is Pareto-filtered and sorted.  This is precisely the
    paper's construction generalized: its single cost function is the
    weight vector ``(100000, 1)``.
    """
    if not weights:
        raise OptimizationError("need at least one weight vector")
    results: List[ParetoPoint] = []
    for weight in weights:
        def scalar(x: Vector, _w=tuple(weight)) -> float:
            values = objectives(x)
            if len(values) != len(_w):
                raise OptimizationError(
                    f"objective returned {len(values)} values for "
                    f"{len(_w)} weights")
            return sum(wi * vi for wi, vi in zip(_w, values))

        problem = Problem(scalar, box, name=f"weighted{tuple(weight)}")
        best = optimizer(problem, **optimizer_options)
        results.append(ParetoPoint(best.x, tuple(objectives(best.x))))
    return pareto_filter(results)
