"""Optimization substrate (paper Sect. III-B).

Self-contained implementations of the methods the paper discusses —
exhaustive "plot and zoom" search, the gradient method, and more elaborate
nonlinear-programming alternatives (Nelder–Mead, simulated annealing,
differential evolution, multistart globalization) — all over compact boxes
so the minimum is guaranteed to exist, plus a scipy bridge for cross-checks
and Pareto machinery for the underlying multi-objective trade-off.
"""

from repro.opt.anneal import simulated_annealing
from repro.opt.coordinate import coordinate_descent
from repro.opt.de import differential_evolution
from repro.opt.golden import golden_section
from repro.opt.gradient import gradient_descent
from repro.opt.grid import grid_search, zoom_search
from repro.opt.multistart import multistart
from repro.opt.neldermead import nelder_mead
from repro.opt.pareto import (
    ParetoPoint,
    pareto_filter,
    sample_front,
    weighted_sum_sweep,
)
from repro.opt.problem import Box, OptResult, Problem, best_of
from repro.opt.scipy_bridge import scipy_differential_evolution, scipy_minimize
from repro.opt.stochastic import (
    ScenarioObjective,
    cvar_cost,
    expected_cost,
    optimize_stochastic,
    value_of_stochastic_solution,
    worst_case_cost,
)

__all__ = [
    "Box",
    "Problem",
    "OptResult",
    "best_of",
    "grid_search",
    "zoom_search",
    "golden_section",
    "gradient_descent",
    "coordinate_descent",
    "nelder_mead",
    "simulated_annealing",
    "differential_evolution",
    "multistart",
    "scipy_minimize",
    "scipy_differential_evolution",
    "ParetoPoint",
    "pareto_filter",
    "sample_front",
    "weighted_sum_sweep",
    "ScenarioObjective",
    "expected_cost",
    "worst_case_cost",
    "cvar_cost",
    "optimize_stochastic",
    "value_of_stochastic_solution",
]
