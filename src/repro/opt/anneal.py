"""Simulated annealing over a compact box.

A global, derivative-free method for cost landscapes that are not "smooth
enough" for nonlinear programming (the paper's escape hatch: "even if a
specific optimization problem is neither analytically nor numerically
solvable, this method can yield some results by testing possible
combinations").  Gaussian proposals are scaled by the box widths and the
temperature follows a geometric cooling schedule.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.opt.problem import OptResult, Problem, Vector


def simulated_annealing(problem: Problem, x0: Optional[Vector] = None,
                        seed: int = 0, steps: int = 5000,
                        t0: Optional[float] = None, t_end: float = 1e-9,
                        proposal_scale: float = 0.25) -> OptResult:
    """Minimize by simulated annealing.

    Parameters
    ----------
    problem:
        Counted objective over a box.
    x0:
        Start point (box centre by default).
    seed:
        Seed of the private :class:`random.Random` — runs are reproducible.
    steps:
        Number of proposal steps.
    t0:
        Initial temperature; estimated from an initial random probe of the
        objective's spread when omitted.
    t_end:
        Final temperature of the geometric schedule.
    proposal_scale:
        Proposal standard deviation as a fraction of each box width
        (annealed down together with the temperature).
    """
    rng = random.Random(seed)
    box = problem.box
    x = box.clip(x0) if x0 is not None else box.center
    start_evals = problem.evaluations
    fx = problem(x)
    best_x, best_f = x, fx

    if t0 is None:
        # Probe the landscape to set a temperature that accepts typical
        # uphill moves early on.
        probes = [problem(box.sample(rng)) for _ in range(10)]
        spread = max(probes) - min(probes)
        t0 = spread if spread > 0.0 else 1.0
    cooling = (t_end / t0) ** (1.0 / max(steps - 1, 1))

    history: List[Tuple[Vector, float]] = [(x, fx)]
    temperature = t0
    for step in range(steps):
        frac = 1.0 - step / steps
        candidate = box.clip(tuple(
            xi + rng.gauss(0.0, proposal_scale * frac * w)
            for xi, w in zip(x, box.widths)))
        f_candidate = problem(candidate)
        delta = f_candidate - fx
        if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
            x, fx = candidate, f_candidate
            if fx < best_f:
                best_x, best_f = x, fx
                history.append((best_x, best_f))
        temperature *= cooling

    return OptResult(
        x=best_x, fun=best_f,
        evaluations=problem.evaluations - start_evals, iterations=steps,
        converged=True, method="simulated_annealing",
        message=f"seed={seed}", history=history)
