"""Differential evolution (rand/1/bin) over a compact box.

A population-based global optimizer: robust on multimodal cost landscapes
(several locally optimal configurations are common once a safety model has
more than a couple of free parameters) at the price of more evaluations
than the local methods.  Deterministic under a fixed seed.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import OptimizationError
from repro.opt.problem import OptResult, Problem, Vector


def differential_evolution(problem: Problem, seed: int = 0,
                           population: int = 0, generations: int = 120,
                           f_weight: float = 0.7, crossover: float = 0.9,
                           tol: float = 1e-12) -> OptResult:
    """Minimize by rand/1/bin differential evolution.

    Parameters
    ----------
    problem:
        Counted objective over a box.
    seed:
        RNG seed (private generator; reproducible).
    population:
        Population size; ``0`` selects ``max(15, 10 * dim)``.
    generations:
        Maximum number of generations.
    f_weight:
        Differential weight F.
    crossover:
        Crossover probability CR.
    tol:
        Stop early when the population's value spread drops below ``tol``.
    """
    if not 0.0 < f_weight <= 2.0:
        raise OptimizationError(f"F must be in (0, 2], got {f_weight}")
    if not 0.0 <= crossover <= 1.0:
        raise OptimizationError(f"CR must be in [0, 1], got {crossover}")
    rng = random.Random(seed)
    box = problem.box
    n = box.dim
    size = population if population > 0 else max(15, 10 * n)
    if size < 4:
        raise OptimizationError(
            f"population must be at least 4, got {size}")
    start_evals = problem.evaluations

    members: List[Vector] = [box.sample(rng) for _ in range(size)]
    values: List[float] = [problem(m) for m in members]
    history: List[Tuple[Vector, float]] = []
    converged = False
    generation = 0
    for generation in range(1, generations + 1):
        for i in range(size):
            candidates = [j for j in range(size) if j != i]
            a, b, c = rng.sample(candidates, 3)
            mutant = tuple(
                members[a][d] + f_weight * (members[b][d] - members[c][d])
                for d in range(n))
            forced = rng.randrange(n)
            trial = tuple(
                mutant[d] if (rng.random() < crossover or d == forced)
                else members[i][d]
                for d in range(n))
            trial = box.clip(trial)
            f_trial = problem(trial)
            if f_trial <= values[i]:
                members[i], values[i] = trial, f_trial
        best_index = min(range(size), key=lambda j: values[j])
        history.append((members[best_index], values[best_index]))
        if max(values) - min(values) < tol:
            converged = True
            break

    best_index = min(range(size), key=lambda j: values[j])
    return OptResult(
        x=members[best_index], fun=values[best_index],
        evaluations=problem.evaluations - start_evals,
        iterations=generation, converged=converged or generation > 0,
        method="differential_evolution", message=f"seed={seed}",
        history=history)
