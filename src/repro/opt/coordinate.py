"""Cyclic coordinate descent with golden-section line searches.

Minimizes one coordinate at a time by exact (comparison-based) line
search over that coordinate's interval, cycling until a full sweep stops
improving.  Two properties make it a natural fit for safety cost
functions:

* line searches compare function values directly, so it resolves optima
  along directions whose *slopes* are near machine noise (the Elbtunnel
  T1 direction, where derivative-based methods stall), and
* each sweep's intermediate results are the per-parameter conditional
  optima — exactly the "tune one free parameter at a time" procedure a
  practicing engineer would follow, made convergent.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.opt.problem import OptResult, Problem, Vector

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


def _line_search(problem: Problem, x: Vector, index: int,
                 tol: float) -> Tuple[Vector, float]:
    """Golden-section search along coordinate ``index``."""
    lo, hi = problem.box.bounds[index]

    def value_at(coordinate: float) -> float:
        candidate = list(x)
        candidate[index] = coordinate
        return problem(tuple(candidate))

    a, b = lo, hi
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc, fd = value_at(c), value_at(d)
    while b - a > tol:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = value_at(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = value_at(d)
    best_coord, best_value = (c, fc) if fc < fd else (d, fd)
    best = list(x)
    best[index] = best_coord
    return tuple(best), best_value


def coordinate_descent(problem: Problem, x0: Optional[Vector] = None,
                       tol: float = 1e-7, line_tol: float = 1e-8,
                       max_sweeps: int = 60) -> OptResult:
    """Minimize by cyclic coordinate descent.

    Parameters
    ----------
    problem:
        Counted objective over a box.
    x0:
        Start point (box centre by default).
    tol:
        Stop when a full sweep improves the objective by less than
        ``tol`` (absolute) and moves no coordinate by more than
        ``line_tol``.
    line_tol:
        Interval tolerance of each golden-section line search.
    max_sweeps:
        Hard cap on the number of full coordinate sweeps.
    """
    box = problem.box
    x = box.clip(x0) if x0 is not None else box.center
    start_evals = problem.evaluations
    fx = problem(x)
    history: List[Tuple[Vector, float]] = [(x, fx)]
    converged = False
    sweeps = 0
    for sweeps in range(1, max_sweeps + 1):
        previous_x, previous_f = x, fx
        for index in range(box.dim):
            x, fx = _line_search(problem, x, index, line_tol)
        history.append((x, fx))
        moved = max(abs(a - b) for a, b in zip(x, previous_x))
        if previous_f - fx < tol and moved < 10.0 * line_tol:
            converged = True
            break
    return OptResult(
        x=x, fun=fx, evaluations=problem.evaluations - start_evals,
        iterations=sweeps, converged=converged,
        method="coordinate_descent", history=history)
