"""Golden-section search for one-dimensional problems.

Many safety parameters are tuned one at a time (a single tolerance, a
single maintenance interval); golden-section search finds the minimum of a
unimodal function on a compact interval with guaranteed interval reduction
per step and no derivatives.
"""

from __future__ import annotations

import math
from repro.errors import OptimizationError
from repro.opt.problem import OptResult, Problem

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/phi ~ 0.618


def golden_section(problem: Problem, tol: float = 1e-8,
                   max_iterations: int = 500) -> OptResult:
    """Minimize a 1-D problem by golden-section search.

    The objective should be unimodal on the interval; for multimodal
    functions the result is a local minimum.
    """
    if problem.box.dim != 1:
        raise OptimizationError(
            f"golden-section search requires a 1-D box, "
            f"got {problem.box.dim}-D")
    (lo, hi), = problem.box.bounds
    start_evals = problem.evaluations
    a, b = lo, hi
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc = problem((c,))
    fd = problem((d,))
    iterations = 0
    while b - a > tol and iterations < max_iterations:
        iterations += 1
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = problem((c,))
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = problem((d,))
    if fc < fd:
        x, fx = c, fc
    else:
        x, fx = d, fd
    return OptResult(
        x=(x,), fun=fx, evaluations=problem.evaluations - start_evals,
        iterations=iterations, converged=b - a <= tol,
        method="golden_section",
        message=f"final interval width {b - a:.3g}")
