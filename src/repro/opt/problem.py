"""Optimization problem definition: boxes, counted objectives, results.

The paper restricts free parameters to compact intervals "to guarantee the
existence of the minimum" (Sect. III-B); :class:`Box` is that product of
compact intervals.  :class:`Problem` wraps the objective with evaluation
counting so algorithm comparisons (benchmark A1) report work honestly, and
:class:`OptResult` is the uniform result record every optimizer returns.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.errors import OptimizationError

Vector = Tuple[float, ...]


class Box:
    """A product of compact intervals — the feasible set.

    ``Box([(0, 30), (0, 30)])`` is the paper's timer-runtime domain.
    """

    def __init__(self, bounds: Sequence[Tuple[float, float]]):
        bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        if not bounds:
            raise OptimizationError("box needs at least one interval")
        for lo, hi in bounds:
            if not (math.isfinite(lo) and math.isfinite(hi)):
                raise OptimizationError(
                    f"intervals must be compact (finite), got [{lo}, {hi}]")
            if not lo < hi:
                raise OptimizationError(
                    f"interval must satisfy lo < hi, got [{lo}, {hi}]")
        self.bounds: List[Tuple[float, float]] = bounds

    @property
    def dim(self) -> int:
        """Number of free parameters."""
        return len(self.bounds)

    @property
    def widths(self) -> Vector:
        """Interval widths per dimension."""
        return tuple(hi - lo for lo, hi in self.bounds)

    @property
    def center(self) -> Vector:
        """Midpoint of the box."""
        return tuple(0.5 * (lo + hi) for lo, hi in self.bounds)

    def contains(self, x: Sequence[float], tol: float = 1e-12) -> bool:
        """True when ``x`` lies inside the box (with tolerance)."""
        if len(x) != self.dim:
            return False
        return all(lo - tol <= xi <= hi + tol
                   for xi, (lo, hi) in zip(x, self.bounds))

    def clip(self, x: Sequence[float]) -> Vector:
        """Project ``x`` onto the box (component-wise clamp)."""
        if len(x) != self.dim:
            raise OptimizationError(
                f"point has dimension {len(x)}, box has {self.dim}")
        return tuple(min(max(xi, lo), hi)
                     for xi, (lo, hi) in zip(x, self.bounds))

    def sample(self, rng: random.Random) -> Vector:
        """Draw a uniform random point inside the box."""
        return tuple(rng.uniform(lo, hi) for lo, hi in self.bounds)

    def grid(self, points_per_dim: int) -> List[Vector]:
        """Return a full-factorial grid with endpoints included."""
        if points_per_dim < 2:
            raise OptimizationError(
                f"need at least 2 points per dimension, got {points_per_dim}")
        axes = []
        for lo, hi in self.bounds:
            step = (hi - lo) / (points_per_dim - 1)
            axes.append([lo + i * step for i in range(points_per_dim)])
        points: List[Vector] = [()]
        for axis in axes:
            points = [p + (v,) for p in points for v in axis]
        return points

    def shrink_around(self, x: Sequence[float], factor: float) -> "Box":
        """Return a sub-box of relative size ``factor`` centred on ``x``.

        The sub-box is clamped so it never leaves the original box — the
        zoom step of the paper's "3D plot and zoom into it" procedure.
        """
        if not 0.0 < factor < 1.0:
            raise OptimizationError(
                f"shrink factor must be in (0, 1), got {factor}")
        new_bounds = []
        for xi, (lo, hi) in zip(self.clip(x), self.bounds):
            half = 0.5 * factor * (hi - lo)
            new_lo, new_hi = xi - half, xi + half
            # Slide the window back inside when it sticks out of a wall;
            # factor < 1 guarantees it fits.
            if new_lo < lo:
                new_lo, new_hi = lo, lo + 2.0 * half
            elif new_hi > hi:
                new_lo, new_hi = hi - 2.0 * half, hi
            new_bounds.append((new_lo, new_hi))
        return Box(new_bounds)

    def __repr__(self) -> str:
        inside = ", ".join(f"[{lo:g}, {hi:g}]" for lo, hi in self.bounds)
        return f"Box({inside})"


class Problem:
    """A minimization problem: counted objective over a box.

    The objective receives a tuple of floats and returns a float.  Every
    call is counted; optimizers report the count in their results.
    """

    def __init__(self, objective: Callable[[Vector], float], box: Box,
                 name: str = "problem"):
        if not callable(objective):
            raise OptimizationError("objective must be callable")
        self._objective = objective
        self.box = box
        self.name = name
        self.evaluations = 0

    def __call__(self, x: Sequence[float]) -> float:
        x = tuple(float(v) for v in x)
        if not self.box.contains(x, tol=1e-9):
            raise OptimizationError(
                f"objective evaluated outside the box at {x}")
        self.evaluations += 1
        value = float(self._objective(x))
        if math.isnan(value):
            raise OptimizationError(f"objective returned NaN at {x}")
        return value

    def reset_counter(self) -> None:
        """Zero the evaluation counter (e.g. between benchmark rounds)."""
        self.evaluations = 0


@dataclass
class OptResult:
    """Uniform optimizer result record."""

    x: Vector
    fun: float
    evaluations: int
    iterations: int
    converged: bool
    method: str
    message: str = ""
    history: List[Tuple[Vector, float]] = field(default_factory=list)

    def __repr__(self) -> str:
        point = ", ".join(f"{v:.6g}" for v in self.x)
        return (f"OptResult({self.method}: f({point}) = {self.fun:.6g}, "
                f"{self.evaluations} evals, "
                f"{'converged' if self.converged else 'not converged'})")


def best_of(results: Sequence[OptResult]) -> OptResult:
    """Return the result with the lowest objective value."""
    if not results:
        raise OptimizationError("no results to choose from")
    return min(results, key=lambda r: r.fun)
