"""Content-addressed fingerprints for engine jobs.

The engine caches results under keys derived from *what* is being
computed, not from object identities: two :class:`~repro.fta.tree.FaultTree`
objects that describe the same hazard structure — even when built in a
different order — must share a fingerprint, while any change to the
structure (a gate type, an input, a default probability, an INHIBIT
condition) must change it.

The canonical form is a recursive textual serialization of the tree from
the top event down.  Inputs of commutative gates (AND, OR, XOR, K-of-N)
are sorted by their canonical forms so construction order cannot leak into
the key; NOT and INHIBIT keep their single ordered input.  Shared subtrees
(the DAG case) are canonicalized once and reused.  Tree *names* are
display metadata and deliberately excluded; event names are part of the
structure because probability overrides address leaves by name.

Floats are canonicalized through :func:`repr`, which is exact for Python
floats (round-trips the IEEE-754 value).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.errors import EngineError
from repro.fta.events import (
    Condition,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

#: Gate types whose inputs may be reordered without changing semantics.
_COMMUTATIVE = (GateType.AND, GateType.OR, GateType.XOR, GateType.KOFN)


def digest(text: str) -> str:
    """SHA-256 hex digest of a canonical text form."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _number(value: Optional[float]) -> str:
    return "none" if value is None else repr(float(value))


def _canonical(tree: FaultTree, include_values: bool) -> str:
    """Shared canonicalizer behind :func:`canonical_tree` (leaf
    probabilities included) and :func:`canonical_shape` (structure only).

    Iterative post-order so deep gate chains never hit the recursion
    limit; commutative gate inputs are sorted, making the form
    order-independent.
    """
    memo: Dict[int, str] = {}
    stack = [(tree.top, False)]
    while stack:
        event, ready = stack.pop()
        key = id(event)
        if key in memo:
            continue
        if isinstance(event, IntermediateEvent):
            gate = event.gate
            if ready:
                inputs = [memo[id(child)] for child in gate.inputs]
                if gate.gate_type in _COMMUTATIVE:
                    inputs.sort()
                parts = [gate.gate_type.value]
                if gate.k is not None:
                    parts.append(f"k={gate.k}")
                if gate.condition is not None:
                    parts.append("cond=" + memo[id(gate.condition)])
                memo[key] = (f"gate({event.name};{';'.join(parts)};"
                             f"[{','.join(inputs)}])")
            else:
                stack.append((event, True))
                children = list(gate.inputs)
                if gate.condition is not None:
                    children.append(gate.condition)
                for child in reversed(children):
                    if id(child) not in memo:
                        stack.append((child, False))
        elif isinstance(event, PrimaryFailure):
            memo[key] = (f"pf({event.name};{_number(event.probability)})"
                         if include_values else f"pf({event.name})")
        elif isinstance(event, Condition):
            memo[key] = (f"cond({event.name};{_number(event.probability)})"
                         if include_values else f"cond({event.name})")
        elif isinstance(event, HouseEvent):
            memo[key] = f"house({event.name};{event.state})"
        else:  # pragma: no cover - event taxonomy is closed
            raise EngineError(
                f"cannot canonicalize event type {type(event).__name__}")
    return memo[id(tree.top)]


def canonical_tree(tree: FaultTree) -> str:
    """The order-independent canonical text form of a fault tree."""
    return _canonical(tree, include_values=True)


def canonical_shape(tree: FaultTree) -> str:
    """Canonical form of the tree *structure*, ignoring leaf probabilities.

    House-event states stay in (they change the Boolean function); what
    drops out is exactly the data a compiled tape does not depend on.
    Two trees with equal shape share gates, leaves, and conditions — but
    not necessarily the BDD variable order, which is why
    :func:`shape_fingerprint` additionally pins the declaration order.
    """
    return _canonical(tree, include_values=False)


def shape_fingerprint(tree: FaultTree) -> str:
    """Content hash keying compiled artifacts (tapes) for a tree.

    Combines :func:`canonical_shape` with the leaf order
    :func:`repro.fta.quantify.declared_leaf_order` produces — the order
    ``to_bdd`` registers variables in — so a cache hit guarantees the
    stored tape performs *bit-identical* arithmetic to a fresh compile:
    same structure, same variable order, same step semantics.
    """
    from repro.fta.quantify import declared_leaf_order
    if not isinstance(tree, FaultTree):
        raise EngineError(
            f"expected a FaultTree, got {type(tree).__name__}")
    order = ",".join(declared_leaf_order(tree))
    return digest("shape:" + canonical_shape(tree) + "|order:" + order)


def tree_fingerprint(tree: FaultTree) -> str:
    """Structural content hash of a fault tree (cached on the tree).

    Uses the ``_fingerprint`` slot :class:`~repro.fta.tree.FaultTree`
    initializes; trees are immutable after validation, so caching is safe
    and repeated jobs over the same tree object hash it only once.
    """
    if not isinstance(tree, FaultTree):
        raise EngineError(
            f"expected a FaultTree, got {type(tree).__name__}")
    cached = getattr(tree, "_fingerprint", None)
    if cached is None:
        cached = digest("tree:" + canonical_tree(tree))
        tree._fingerprint = cached
    return cached


def values_fingerprint(values: Optional[Mapping[str, float]]) -> str:
    """Canonical hash of a name->number mapping (e.g. leaf overrides)."""
    if not values:
        return "{}"
    items = {str(name): _number(value)
             for name, value in values.items()}
    return json.dumps(items, sort_keys=True, separators=(",", ":"))


def parametric_fingerprint(probability) -> str:
    """Fingerprint a :class:`~repro.core.parametric.ParametricProbability`.

    Uses the probability's own ``fingerprint`` content token: the
    constructors in :mod:`repro.core.parametric` derive it from their
    actual inputs (distribution parameters, exact float reprs, table
    points), while raw-callable probabilities carry an opaque per-object
    token — so a cache hit can never conflate two semantically different
    probabilities, only (conservatively) miss.
    """
    parameters = ",".join(sorted(probability.parameters))
    return f"param({probability.fingerprint};{parameters})"


def grid_fingerprint(grid: Sequence[Mapping[str, float]]) -> str:
    """Canonical hash of a list of parameter valuations (a sweep grid)."""
    return digest("grid:" + ";".join(
        values_fingerprint(point) for point in grid))


def options_fingerprint(**options: Any) -> str:
    """Canonical form of keyword options (JSON with sorted keys)."""

    def normalize(value: Any) -> Any:
        if isinstance(value, float):
            return repr(value)
        if isinstance(value, Mapping):
            return {str(k): normalize(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [normalize(v) for v in value]
        return value

    return json.dumps({k: normalize(v) for k, v in options.items()},
                      sort_keys=True, separators=(",", ":"), default=str)


def model_fingerprint(model) -> str:
    """Structural fingerprint of a :class:`~repro.core.model.SafetyModel`.

    Covers the parameter space (names, bounds, defaults), each hazard's
    content (tree fingerprint + assignment labels + method + policy for
    fault-tree hazards, formula label for closed forms), and the cost
    weights.  The model's display name is excluded.
    """
    from repro.core.model import FaultTreeHazard, FormulaHazard

    space = ";".join(
        f"{p.name}[{_number(p.lower)},{_number(p.upper)},"
        f"{_number(p.default)}]" for p in model.space)
    hazards = []
    for name in sorted(model.hazards):
        hazard = model.hazards[name]
        if isinstance(hazard, FaultTreeHazard):
            assignments = ",".join(
                f"{leaf}={parametric_fingerprint(p)}"
                for leaf, p in sorted(hazard.assignments.items()))
            hazards.append(
                f"{name}:ft({tree_fingerprint(hazard.tree)};"
                f"{hazard.method};{hazard.policy.value};{assignments})")
        elif isinstance(hazard, FormulaHazard):
            hazards.append(
                f"{name}:formula({parametric_fingerprint(hazard.formula)})")
        else:
            raise EngineError(
                f"cannot fingerprint hazard type {type(hazard).__name__}")
    costs = ",".join(f"{name}={_number(model.cost_model.cost_of(name))}"
                     for name in sorted(model.cost_model.hazards))
    return digest(f"model:space({space});hazards({';'.join(hazards)});"
                  f"costs({costs})")


def job_fingerprint(kind: str, *parts: str) -> str:
    """Assemble a job cache key from its kind and canonical parts."""
    return digest(kind + "|" + "|".join(parts))
