"""Binary cache-payload codec: JSON-safe values ⇄ compact byte blobs.

The engine's persistable jobs encode their results as JSON-safe values
(:meth:`~repro.engine.jobs.Job.encode_result`).  Matrix-shaped results —
sweep surfaces, Monte Carlo counter rows, uncertainty sample vectors —
are dominated by long homogeneous lists of floats, and serializing those
through JSON text costs one ``repr``/parse round trip per number on
every store *and* every read.

This codec keeps the JSON-safe value model but stores the numeric bulk
as raw little-endian arrays (npy-style: dtype + length + buffer), with a
small JSON *skeleton* describing the surrounding structure:

``encode_payload(value)``
    → ``MAGIC | version | skeleton length | skeleton JSON | arrays``

``decode_payload(blob)``
    → a value that compares equal to the original (floats bit-exact —
    binary float64 is lossless, unlike decimal text).

Only *homogeneous* runs are packed: a list of ≥ :data:`MIN_PACK`
elements that are all ``float`` or all 64-bit ``int`` (``bool`` is
never packed — it is a distinct JSON type).  Everything else stays in
the skeleton verbatim, so arbitrary JSON-safe values round-trip.

The codec is what lets :class:`~repro.engine.cache.SqliteCache` store
results as single BLOB columns while keeping payloads value-equal with
the JSON backend (the cross-backend conformance suite asserts this).
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Any, List, Tuple

from repro.errors import EngineError

#: File magic of one encoded payload ("Repro Binary Payload").
MAGIC = b"RBP1"

#: Codec version written into every blob.
VERSION = 1

#: Minimum list length worth hoisting into the binary section; shorter
#: lists stay as JSON in the skeleton (the framing would cost more than
#: it saves).
MIN_PACK = 8

#: Skeleton marker for a packed array: ``{_BLOB: array_index}``.
_BLOB = "__repro_blob__"
#: Skeleton marker escaping a user dict that contains a marker key.
_ESC = "__repro_esc__"

_HEADER = struct.Struct("<4sBI")
_ARRAY_HEADER = struct.Struct("<BQ")

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


def _pack_dtype(values: list) -> str:
    """The array typecode for a packable list, or ``""`` when mixed.

    Exact ``type`` checks on purpose: ``bool`` is a subclass of ``int``
    but a distinct JSON type, and mixed int/float lists must round-trip
    their element types, so both fall through to the JSON skeleton.
    """
    if len(values) < MIN_PACK:
        return ""
    first = type(values[0])
    if first is float:
        return "d" if all(type(v) is float for v in values) else ""
    if first is int:
        if all(type(v) is int and _INT64_MIN <= v <= _INT64_MAX
               for v in values):
            return "q"
    return ""


def _strip(value: Any, arrays: List[Tuple[str, list]]) -> Any:
    """Replace packable lists with markers, collecting the arrays."""
    if isinstance(value, list):
        dtype = _pack_dtype(value)
        if dtype:
            arrays.append((dtype, value))
            return {_BLOB: len(arrays) - 1, "d": dtype}
        return [_strip(item, arrays) for item in value]
    if isinstance(value, dict):
        stripped = {key: _strip(item, arrays)
                    for key, item in value.items()}
        if _BLOB in value or _ESC in value:
            return {_ESC: stripped}
        return stripped
    return value


def _rebuild(value: Any, arrays: List[list]) -> Any:
    """Inverse of :func:`_strip`: resolve markers back into lists."""
    if isinstance(value, list):
        return [_rebuild(item, arrays) for item in value]
    if isinstance(value, dict):
        if _ESC in value:
            # An escaped user dict: rebuild its values, but never
            # interpret the dict itself as a marker again.
            return {key: _rebuild(item, arrays)
                    for key, item in value[_ESC].items()}
        if _BLOB in value:
            return arrays[value[_BLOB]]
        return {key: _rebuild(item, arrays)
                for key, item in value.items()}
    return value


def encode_payload(value: Any) -> bytes:
    """Serialize one JSON-safe value to a self-describing binary blob."""
    arrays: List[Tuple[str, list]] = []
    skeleton = _strip(value, arrays)
    try:
        header = json.dumps(skeleton, sort_keys=True,
                            separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise EngineError(
            f"cache payload is not JSON-safe: {exc}") from None
    parts = [_HEADER.pack(MAGIC, VERSION, len(header)), header]
    for dtype, values in arrays:
        buffer = array(dtype, values)
        if sys.byteorder == "big":  # pragma: no cover - LE hardware
            buffer.byteswap()
        parts.append(_ARRAY_HEADER.pack(ord(dtype), len(values)))
        parts.append(buffer.tobytes())
    return b"".join(parts)


def decode_payload(blob: bytes) -> Any:
    """Inverse of :func:`encode_payload`; raises ``EngineError`` on a
    truncated or foreign blob (cache corruption surfaces here)."""
    if len(blob) < _HEADER.size:
        raise EngineError("cache payload is truncated")
    magic, version, header_len = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise EngineError(
            f"not a cache payload (bad magic {magic!r})")
    if version != VERSION:
        raise EngineError(
            f"unsupported cache payload version {version}")
    offset = _HEADER.size
    header = blob[offset:offset + header_len]
    if len(header) != header_len:
        raise EngineError("cache payload is truncated")
    offset += header_len
    try:
        skeleton = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise EngineError(
            f"corrupt cache payload skeleton: {exc}") from None
    arrays: List[list] = []
    while offset < len(blob):
        if len(blob) - offset < _ARRAY_HEADER.size:
            raise EngineError("cache payload is truncated")
        code, count = _ARRAY_HEADER.unpack_from(blob, offset)
        offset += _ARRAY_HEADER.size
        dtype = chr(code)
        if dtype not in ("d", "q"):
            raise EngineError(
                f"corrupt cache payload: unknown dtype {dtype!r}")
        buffer = array(dtype)
        nbytes = count * buffer.itemsize
        chunk = blob[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise EngineError("cache payload is truncated")
        buffer.frombytes(chunk)
        if sys.byteorder == "big":  # pragma: no cover - LE hardware
            buffer.byteswap()
        offset += nbytes
        arrays.append(buffer.tolist())
    return _rebuild(skeleton, arrays)
