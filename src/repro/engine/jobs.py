"""Declarative job specifications for the batch-evaluation engine.

A job is a validated, content-addressable description of one unit of
work over the library's analytic machinery:

* :class:`QuantifyJob`     — one hazard probability of one fault tree,
* :class:`SweepJob`        — a fault tree quantified across a parameter
  grid (chunked across workers),
* :class:`MonteCarloJob`   — a sampling estimate split into
  deterministically seeded shards and pooled into one Wilson interval,
* :class:`UncertaintyJob`  — epistemic uncertainty propagation of an
  :class:`~repro.uq.spec.UncertainModel` through one tree (row-sharded
  across workers, bit-identical at any worker/shard count),
* :class:`SimulationJob`   — batched replications of the Elbtunnel
  traffic simulation (replication-sharded across workers, each row
  bit-identical to the scalar kernel at its seed),
* :class:`OptimizeJob`     — a full safety-optimization run over a
  :class:`~repro.core.model.SafetyModel`.

Jobs know how to fingerprint themselves (so semantically identical
requests share a cache key), how to run serially, how to spread across a
:class:`~repro.engine.pool.WorkerPool`, and how to encode their results
for the JSON-persistable cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.parametric import (
    ParametricProbability,
    as_parametric,
    grid_points,
)
from repro.engine.fingerprint import (
    grid_fingerprint,
    job_fingerprint,
    model_fingerprint,
    options_fingerprint,
    parametric_fingerprint,
    tree_fingerprint,
    values_fingerprint,
)
from repro.engine.pool import (
    WorkerPool,
    chunk_indices,
    derive_seed,
    run_monte_carlo_shard,
    run_quantify_chunk,
    run_uq_chunk,
)
from repro.errors import EngineError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.cutsets import CutSetCollection, mocus
from repro.fta.quantify import hazard_probability
from repro.fta.tree import FaultTree
from repro.sim.montecarlo import MonteCarloEstimate
from repro.stats.estimation import pooled_wilson_ci

#: Quantification methods accepted by tree-based jobs (mirrors
#: :mod:`repro.fta.quantify`).
QUANTIFY_METHODS = ("rare_event", "mcub", "inclusion_exclusion", "exact")

#: Methods whose cut sets can be computed once and shared across points.
_CUT_SET_METHODS = ("rare_event", "mcub", "inclusion_exclusion")


def _check_tree(tree: FaultTree) -> FaultTree:
    if not isinstance(tree, FaultTree):
        raise EngineError(
            f"job requires a FaultTree, got {type(tree).__name__}")
    return tree


def _check_method(method: str) -> str:
    if method not in QUANTIFY_METHODS:
        raise EngineError(
            f"unknown method {method!r}; "
            f"expected one of {QUANTIFY_METHODS}")
    return method


def _check_policy(policy: ConstraintPolicy) -> ConstraintPolicy:
    if not isinstance(policy, ConstraintPolicy):
        raise EngineError(
            f"policy must be a ConstraintPolicy, got {policy!r}")
    return policy


def _check_probabilities(probabilities: Optional[Mapping[str, float]]
                         ) -> Optional[Dict[str, float]]:
    if probabilities is None:
        return None
    checked: Dict[str, float] = {}
    for name, value in probabilities.items():
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise EngineError(
                f"probability of {name!r} must be in [0, 1], got {value}")
        checked[str(name)] = value
    return checked


def _shared_cut_sets(tree: FaultTree,
                     method: str) -> Optional[CutSetCollection]:
    """Cut sets computed once per job (they don't depend on the point)."""
    if method in _CUT_SET_METHODS and tree.is_coherent:
        return mocus(tree)
    return None


class Job:
    """Base class: a validated, fingerprintable unit of work."""

    kind: str = "job"
    #: Whether results are JSON-encodable for the disk-persisted cache.
    persistable: bool = True

    _cached_fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """The job's content-addressed cache key (computed once)."""
        if self._cached_fingerprint is None:
            self._cached_fingerprint = job_fingerprint(
                self.kind, *self._fingerprint_parts())
        return self._cached_fingerprint

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def run_serial(self) -> Any:
        """Execute the job in-process, without a pool."""
        raise NotImplementedError

    def run(self, pool: WorkerPool) -> Any:
        """Execute the job, using the pool where the job can shard."""
        return self.run_serial()

    @staticmethod
    def encode_result(result: Any) -> Any:
        """JSON-safe encoding of a result (for disk persistence)."""
        return result

    @staticmethod
    def decode_result(encoded: Any) -> Any:
        """Inverse of :meth:`encode_result`."""
        return encoded

    def describe(self) -> str:
        """One-line human description for batch reports."""
        return self.kind


class QuantifyJob(Job):
    """Quantify one fault tree hazard at fixed leaf probabilities."""

    kind = "quantify"

    def __init__(self, tree: FaultTree,
                 probabilities: Optional[Mapping[str, float]] = None,
                 method: str = "rare_event",
                 policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT):
        self.tree = _check_tree(tree)
        self.probabilities = _check_probabilities(probabilities)
        self.method = _check_method(method)
        self.policy = _check_policy(policy)

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        return (tree_fingerprint(self.tree),
                values_fingerprint(self.probabilities),
                self.method, self.policy.value)

    def run_serial(self) -> float:
        return hazard_probability(self.tree, self.probabilities,
                                  method=self.method, policy=self.policy)

    def describe(self) -> str:
        return (f"quantify {self.tree.name!r} "
                f"({self.method}, {self.policy.value})")


class IncrementalJob(Job):
    """A what-if script: quantify a tree, then re-quantify per edit.

    Wraps an :class:`repro.incremental.IncrementalSession` as an engine
    job: the baseline is quantified, each edit in ``edits`` is applied
    (in order) with an :class:`~repro.incremental.session.EditReport`
    per step, and the per-module tapes/values persist through the
    engine's cache backend.  When run through an
    :class:`~repro.engine.engine.Engine`, :meth:`bind_engine` hands the
    session the engine's shared cache and
    :class:`~repro.incremental.session.IncrementalStats` (surfaced in
    ``/stats``); standalone ``run_serial`` works too, just uncached.
    """

    kind = "incremental"

    def __init__(self, tree: FaultTree,
                 probabilities: Optional[Mapping[str, float]] = None,
                 edits: Optional[Sequence[Mapping[str, Any]]] = None,
                 sift_threshold: Optional[int] = None):
        from repro.incremental import validate_edits
        self.tree = _check_tree(tree)
        self.probabilities = _check_probabilities(probabilities)
        self.edits = tuple(validate_edits(list(edits or [])))
        if sift_threshold is not None:
            if not isinstance(sift_threshold, int) \
                    or isinstance(sift_threshold, bool) \
                    or sift_threshold < 1:
                raise EngineError(
                    f"sift_threshold must be a positive int, "
                    f"got {sift_threshold!r}")
        self.sift_threshold = sift_threshold
        self._cache = None
        self._stats = None

    def bind_engine(self, engine: Any) -> None:
        """Adopt the engine's cache backend and incremental counters."""
        self._cache = engine.cache
        self._stats = engine.incremental

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        # sift_threshold is *not* an execution detail: when it triggers,
        # the tape arithmetic (hence the exact float result) changes.
        return (tree_fingerprint(self.tree),
                values_fingerprint(self.probabilities),
                options_fingerprint(edits=list(self.edits),
                                    sift_threshold=self.sift_threshold))

    def run_serial(self) -> Dict[str, Any]:
        from repro.incremental import IncrementalSession
        session = IncrementalSession(
            self.tree, self.probabilities, cache=self._cache,
            sift_threshold=self.sift_threshold, stats=self._stats)
        baseline = session.quantify()
        steps = [session.apply([edit]).as_dict() for edit in self.edits]
        return {"tree": self.tree.name,
                "modules": session.modules,
                "baseline": baseline,
                "steps": steps,
                "final": steps[-1]["value"] if steps else baseline}

    def describe(self) -> str:
        return (f"incremental {self.tree.name!r} "
                f"({len(self.edits)} edits)")


@dataclass(frozen=True)
class SweepResult:
    """A quantified parameter grid: one value per grid point, in order."""

    points: Tuple[Dict[str, float], ...]
    values: Tuple[float, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(zip(self.points, self.values))

    def series(self, parameter: str) -> List[Tuple[float, float]]:
        """The ``(parameter value, hazard probability)`` pairs — the raw
        data behind one-parameter plots like the paper's Fig. 6."""
        return [(point[parameter], value) for point, value in self]

    def best(self) -> Tuple[Dict[str, float], float]:
        """The grid point with the smallest value (grid-search optimum)."""
        index = min(range(len(self.values)), key=self.values.__getitem__)
        return self.points[index], self.values[index]


class SweepJob(Job):
    """Quantify a fault tree across a grid of parameter valuations.

    ``assignments`` maps leaf names to
    :class:`~repro.core.parametric.ParametricProbability` objects (or
    floats); at each grid point they are evaluated *in the parent
    process* — closures never cross the process boundary — and only the
    resulting override dicts are shipped to workers alongside the tree
    and its precomputed cut sets.
    """

    kind = "sweep"

    def __init__(self, tree: FaultTree,
                 assignments: Mapping[str, Any],
                 grid: Sequence[Mapping[str, float]],
                 method: str = "rare_event",
                 policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
                 probabilities: Optional[Mapping[str, float]] = None,
                 chunks: Optional[int] = None,
                 compiled: bool = True):
        self.tree = _check_tree(tree)
        self.method = _check_method(method)
        self.policy = _check_policy(policy)
        # Evaluate the grid through repro.compile (bit-identical to the
        # per-point path, so the flag is not part of the fingerprint).
        self.compiled = bool(compiled)
        # Fixed leaf overrides applied at every point (assignments win).
        self.probabilities = _check_probabilities(probabilities)
        if not assignments:
            raise EngineError("sweep needs at least one leaf assignment")
        self.assignments: Dict[str, ParametricProbability] = {}
        for name, value in assignments.items():
            if name not in tree:
                raise EngineError(
                    f"assignment for unknown leaf {name!r} "
                    f"in tree {tree.name!r}")
            self.assignments[name] = as_parametric(value)
        required = frozenset().union(
            *(p.parameters for p in self.assignments.values()))
        if not grid:
            raise EngineError("sweep grid must not be empty")
        self.grid: List[Dict[str, float]] = []
        for i, point in enumerate(grid):
            missing = required - set(point)
            if missing:
                raise EngineError(
                    f"grid point {i} is missing parameter values for "
                    f"{sorted(missing)}")
            self.grid.append({str(k): float(v) for k, v in point.items()})
        if chunks is not None and chunks < 1:
            raise EngineError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks

    @classmethod
    def from_axes(cls, tree: FaultTree, assignments: Mapping[str, Any],
                  axes: Mapping[str, Sequence[float]],
                  method: str = "rare_event",
                  policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
                  probabilities: Optional[Mapping[str, float]] = None,
                  chunks: Optional[int] = None,
                  compiled: bool = True) -> "SweepJob":
        """Build the grid as the cartesian product of per-axis values."""
        return cls(tree, assignments, grid_points(axes),
                   method=method, policy=policy,
                   probabilities=probabilities, chunks=chunks,
                   compiled=compiled)

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        assignments = ";".join(
            f"{name}={parametric_fingerprint(p)}"
            for name, p in sorted(self.assignments.items()))
        return (tree_fingerprint(self.tree), assignments,
                values_fingerprint(self.probabilities),
                grid_fingerprint(self.grid), self.method,
                self.policy.value)

    def _overrides(self) -> List[Dict[str, float]]:
        base = self.probabilities or {}
        result = []
        for point in self.grid:
            overrides = dict(base)
            overrides.update(
                (name, p(point)) for name, p in self.assignments.items())
            result.append(overrides)
        return result

    def _result(self, values: Sequence[float]) -> SweepResult:
        # Copy the grid dicts: the result (and the cache entry encoded
        # from it) must not share mutable state with this job's grid or
        # with whatever the caller does to the returned points.
        return SweepResult(points=tuple(dict(p) for p in self.grid),
                           values=tuple(values))

    def _use_compiled(self) -> bool:
        from repro.compile import supports_compilation
        return self.compiled and supports_compilation(self.tree,
                                                      self.method)

    def run_serial(self) -> SweepResult:
        cut_sets = _shared_cut_sets(self.tree, self.method)
        if self._use_compiled():
            from repro.compile import compile_tree
            evaluator = compile_tree(self.tree, self.method, self.policy,
                                     cut_sets=cut_sets)
            values = [float(v)
                      for v in evaluator.evaluate(self._overrides())]
            return self._result(values)
        values = [hazard_probability(self.tree, overrides,
                                     method=self.method, policy=self.policy,
                                     cut_sets=cut_sets)
                  for overrides in self._overrides()]
        return self._result(values)

    def run(self, pool: WorkerPool) -> SweepResult:
        if not pool.is_parallel or len(self.grid) == 1:
            return self.run_serial()
        overrides = self._overrides()
        cut_sets = _shared_cut_sets(self.tree, self.method)
        chunks = self.chunks if self.chunks is not None \
            else 4 * pool.workers
        payloads = []
        for start, stop in chunk_indices(len(overrides), chunks):
            chunk = [(i, overrides[i]) for i in range(start, stop)]
            payloads.append(
                (self.tree, cut_sets, self.method, self.policy, chunk,
                 self.compiled))
        values: List[float] = [0.0] * len(overrides)
        for partial in pool.map(run_quantify_chunk, payloads):
            for index, value in partial:
                values[index] = value
        return self._result(values)

    @staticmethod
    def encode_result(result: SweepResult) -> Dict[str, Any]:
        return {"points": [dict(p) for p in result.points],
                "values": list(result.values)}

    @staticmethod
    def decode_result(encoded: Mapping[str, Any]) -> SweepResult:
        return SweepResult(points=tuple(dict(p)
                                        for p in encoded["points"]),
                           values=tuple(encoded["values"]))

    def describe(self) -> str:
        return (f"sweep {self.tree.name!r} over {len(self.grid)} points "
                f"({self.method}, {len(self.assignments)} leaves)")


class MonteCarloJob(Job):
    """Sharded Monte Carlo estimation of one tree's hazard probability.

    The sample budget is split into ``shards`` near-equal pieces, each
    driven by a deterministic seed derived from ``(seed, shard index)``
    (:func:`repro.engine.pool.derive_seed`), and the per-shard counts are
    pooled into a single Wilson interval via
    :func:`repro.stats.estimation.pooled_wilson_ci`.  With ``shards=1``
    the job reproduces :func:`repro.sim.montecarlo.monte_carlo_probability`
    bit-for-bit (same seed, same stream).
    """

    kind = "montecarlo"

    def __init__(self, tree: FaultTree,
                 probabilities: Optional[Mapping[str, float]] = None,
                 samples: int = 100_000, seed: int = 0,
                 confidence: float = 0.95, shards: int = 1):
        self.tree = _check_tree(tree)
        self.probabilities = _check_probabilities(probabilities)
        if samples <= 0:
            raise EngineError(f"samples must be > 0, got {samples}")
        if shards < 1:
            raise EngineError(f"shards must be >= 1, got {shards}")
        if shards > samples:
            raise EngineError(
                f"cannot split {samples} samples into {shards} shards")
        if not 0.0 < confidence < 1.0:
            raise EngineError(
                f"confidence must be in (0, 1), got {confidence}")
        self.samples = int(samples)
        self.seed = int(seed)
        self.confidence = float(confidence)
        self.shards = int(shards)

    def shard_plan(self) -> List[Tuple[int, int]]:
        """The deterministic ``(samples, seed)`` plan, one per shard."""
        if self.shards == 1:
            return [(self.samples, self.seed)]
        return [(stop - start, derive_seed(self.seed, i))
                for i, (start, stop)
                in enumerate(chunk_indices(self.samples, self.shards))]

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        return (tree_fingerprint(self.tree),
                values_fingerprint(self.probabilities),
                options_fingerprint(samples=self.samples, seed=self.seed,
                                    confidence=self.confidence,
                                    shards=self.shards))

    def run_serial(self) -> MonteCarloEstimate:
        return self.run(WorkerPool(1))

    def run(self, pool: WorkerPool) -> MonteCarloEstimate:
        payloads = [(self.tree, self.probabilities, samples, seed)
                    for samples, seed in self.shard_plan()]
        counts = pool.map(run_monte_carlo_shard, payloads)
        occurrences, samples, (ci_low, ci_high) = pooled_wilson_ci(
            counts, self.confidence)
        return MonteCarloEstimate(
            probability=occurrences / samples, ci_low=ci_low,
            ci_high=ci_high, occurrences=occurrences, samples=samples,
            confidence=self.confidence)

    @staticmethod
    def encode_result(result: MonteCarloEstimate) -> Dict[str, Any]:
        return asdict(result)

    @staticmethod
    def decode_result(encoded: Mapping[str, Any]) -> MonteCarloEstimate:
        return MonteCarloEstimate(**encoded)

    def describe(self) -> str:
        return (f"montecarlo {self.tree.name!r} "
                f"({self.samples} samples, {self.shards} shards, "
                f"seed {self.seed})")


class UncertaintyJob(Job):
    """Epistemic uncertainty propagation through one fault tree.

    The seeded sampling design is a pure function of ``(model, samples,
    seed, sampler)`` and is built *whole* in the parent process; workers
    only quantify row blocks of the finished matrix.  Because each
    row's quantification is element-wise, the assembled result is
    bit-identical to the serial run — and to the scalar per-sample
    reference loop (:func:`repro.uq.reference_propagate`) — at any
    worker or shard count.  The fingerprint extends the tree's
    structural hash with the :class:`~repro.uq.spec.UncertainModel`
    content hash, so semantically identical UQ requests share a cache
    entry across sessions.
    """

    kind = "uncertainty"

    def __init__(self, tree: FaultTree, model,
                 samples: int = 1000, seed: int = 0,
                 sampler: str = "lhs", method: str = "exact",
                 policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
                 chunks: Optional[int] = None):
        from repro.compile import supports_compilation
        from repro.uq.sampling import SAMPLERS
        from repro.uq.spec import UncertainModel
        self.tree = _check_tree(tree)
        if not isinstance(model, UncertainModel):
            raise EngineError(
                f"UncertaintyJob requires an UncertainModel, "
                f"got {type(model).__name__}")
        if samples < 1:
            raise EngineError(f"samples must be >= 1, got {samples}")
        if sampler not in SAMPLERS:
            raise EngineError(
                f"unknown sampler {sampler!r}; "
                f"expected one of {SAMPLERS}")
        self.method = _check_method(method)
        if not supports_compilation(tree, method):
            raise EngineError(
                f"uncertainty propagation needs a compilable method "
                f"for tree {tree.name!r}; {method!r} is not")
        self.policy = _check_policy(policy)
        self.model = model
        self.samples = int(samples)
        self.seed = int(seed)
        self.sampler = sampler
        if chunks is not None and chunks < 1:
            raise EngineError(f"chunks must be >= 1, got {chunks}")
        # Like SweepJob.chunks/compiled: an execution detail, results
        # are bit-identical regardless — deliberately not fingerprinted.
        self.chunks = chunks

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        return (tree_fingerprint(self.tree), self.model.fingerprint,
                options_fingerprint(samples=self.samples, seed=self.seed,
                                    sampler=self.sampler),
                self.method, self.policy.value)

    def run_serial(self):
        from repro.uq import propagate
        return propagate(self.tree, self.model, n_samples=self.samples,
                         seed=self.seed, sampler=self.sampler,
                         method=self.method, policy=self.policy)

    def run(self, pool: WorkerPool):
        if not pool.is_parallel or self.samples == 1:
            return self.run_serial()
        from repro.uq import PropagationResult, propagation_matrix
        matrix = propagation_matrix(
            self.tree, self.model, self.samples, seed=self.seed,
            sampler=self.sampler, method=self.method, policy=self.policy)
        chunks = self.chunks if self.chunks is not None \
            else 4 * pool.workers
        payloads = [(self.tree, self.method, self.policy,
                     matrix[start:stop])
                    for start, stop in chunk_indices(self.samples,
                                                     chunks)]
        values: List[float] = []
        for partial in pool.map(run_uq_chunk, payloads):
            values.extend(partial)
        return PropagationResult(
            name=self.tree.name, samples=tuple(values), seed=self.seed,
            sampler=self.sampler, method=self.method)

    @staticmethod
    def encode_result(result) -> Dict[str, Any]:
        return result.encode()

    @staticmethod
    def decode_result(encoded: Mapping[str, Any]):
        from repro.uq import PropagationResult
        return PropagationResult.decode(encoded)

    def describe(self) -> str:
        return (f"uncertainty {self.tree.name!r} "
                f"({self.samples} {self.sampler} samples, "
                f"seed {self.seed}, {len(self.model)} uncertain events)")


class SimulationJob(Job):
    """Batched replications of the Elbtunnel traffic simulation.

    ``replications`` independent runs of one
    :class:`~repro.elbtunnel.simulation.SimulationConfig`, seeded by
    :func:`repro.sim.batch.replication_seeds` from ``seed`` (default:
    the config's own seed) and executed through the batch kernel
    (:mod:`repro.elbtunnel.batch`).  Replication rows are pure functions
    of ``(config, seed)``, so sharding the seed list across the pool
    reassembles to the same :class:`BatchSimulationResult` at any worker
    or shard count — and every row is bit-identical to the scalar
    ``simulate()`` run at that seed.  Like ``chunks`` elsewhere,
    ``shards`` is an execution detail and not part of the fingerprint;
    the content key covers the full simulation config plus
    ``(replications, seed)``, so repeated studies hit the LRU/disk cache
    like every other job.
    """

    kind = "simulate"

    def __init__(self, config, replications: int = 1,
                 seed: Optional[int] = None,
                 shards: Optional[int] = None):
        from repro.elbtunnel.simulation import SimulationConfig
        if not isinstance(config, SimulationConfig):
            raise EngineError(
                f"SimulationJob requires a SimulationConfig, "
                f"got {type(config).__name__}")
        if replications < 1:
            raise EngineError(
                f"replications must be >= 1, got {replications}")
        if shards is not None and shards < 1:
            raise EngineError(f"shards must be >= 1, got {shards}")
        self.config = config
        self.replications = int(replications)
        self.seed = int(config.seed if seed is None else seed)
        self.shards = shards

    def _config_dict(self) -> Dict[str, Any]:
        encoded = asdict(self.config)
        encoded["variant"] = self.config.variant.value
        # Replication seeds derive from the job's effective seed alone
        # (replicate_counters overrides the config seed per run), so a
        # superseded config seed must not split the cache key.
        encoded["seed"] = self.seed
        return encoded

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        return (options_fingerprint(**self._config_dict()),
                options_fingerprint(replications=self.replications,
                                    seed=self.seed))

    def seed_plan(self) -> List[int]:
        """The deterministic per-replication seeds, in order."""
        from repro.sim.batch import replication_seeds
        return replication_seeds(self.seed, self.replications)

    def run_serial(self):
        return self.run(WorkerPool(1))

    def run(self, pool: WorkerPool):
        from repro.elbtunnel.batch import BatchSimulationResult
        from repro.engine.pool import run_simulation_shard
        seeds = self.seed_plan()
        if not pool.is_parallel or self.replications == 1:
            rows = run_simulation_shard((self.config, seeds))
        else:
            chunks = self.shards if self.shards is not None \
                else 4 * pool.workers
            payloads = [(self.config, seeds[start:stop])
                        for start, stop
                        in chunk_indices(self.replications, chunks)]
            rows = []
            for partial in pool.map(run_simulation_shard, payloads):
                rows.extend(partial)
        return BatchSimulationResult.from_rows(self.config.duration,
                                               seeds, rows)

    @staticmethod
    def encode_result(result) -> Dict[str, Any]:
        return result.encode()

    @staticmethod
    def decode_result(encoded: Mapping[str, Any]):
        from repro.elbtunnel.batch import BatchSimulationResult
        return BatchSimulationResult.decode(encoded)

    def describe(self) -> str:
        days = self.config.duration / (60.0 * 24)
        return (f"simulate {self.config.variant.value} "
                f"({self.replications} replications x {days:g} days, "
                f"seed {self.seed})")


class OptimizeJob(Job):
    """A full safety-optimization run over a :class:`SafetyModel`.

    Optimizer trajectories are inherently sequential, so the job always
    runs in the parent process; the engine's value here is caching — an
    optimizer study revisiting the same model and method reuses the
    finished run.  Results hold optimizer history objects and are
    memory-cached only (``persistable=False``).
    """

    kind = "optimize"
    persistable = False

    def __init__(self, model, method: str = "nelder_mead",
                 baseline: Optional[Sequence[float]] = None,
                 options: Optional[Mapping[str, Any]] = None):
        from repro.core.model import SafetyModel
        from repro.core.optimizer import _METHODS
        if not isinstance(model, SafetyModel):
            raise EngineError(
                f"OptimizeJob requires a SafetyModel, "
                f"got {type(model).__name__}")
        if method not in _METHODS:
            raise EngineError(
                f"unknown optimization method {method!r}; "
                f"expected one of {sorted(_METHODS)}")
        if baseline is not None:
            baseline = tuple(float(v) for v in baseline)
            if len(baseline) != len(model.space):
                raise EngineError(
                    f"baseline has {len(baseline)} components for "
                    f"{len(model.space)} parameters")
        self.model = model
        self.method = method
        self.baseline = baseline
        self.options: Dict[str, Any] = dict(options or {})

    def _fingerprint_parts(self) -> Tuple[str, ...]:
        return (model_fingerprint(self.model), self.method,
                options_fingerprint(baseline=self.baseline,
                                    **self.options))

    def run_serial(self):
        from repro.core.optimizer import SafetyOptimizer
        return SafetyOptimizer(self.model).optimize(
            self.method, baseline=self.baseline, **self.options)

    def describe(self) -> str:
        return f"optimize {self.model.name!r} ({self.method})"
