"""The :class:`Engine` façade: jobs → cache → worker pool.

The engine is the one object callers hold: submit declarative jobs
(:mod:`repro.engine.jobs`), run them, and let the engine content-address
every result so repeated requests — the same fault tree quantified at
the same points by an optimizer, a parameter study re-run with one axis
changed, a Monte Carlo check repeated across sessions via the disk cache
— cost a dictionary lookup instead of a recomputation.

One engine may be shared by many threads (the :mod:`repro.serve`
service runs every client request through a single engine): the cache
is internally locked, the activity counters are guarded, and
:meth:`Engine.run_shared` adds **request coalescing** — an in-flight
registry keyed by job fingerprint, so concurrent submissions of the
same job share one computation instead of racing to repeat it.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.cache import MISS, CacheBackend, CacheStats, create_cache
from repro.engine.jobs import Job
from repro.engine.pool import WorkerPool
from repro.errors import EngineError
from repro.resilience import FaultPlan, RetryPolicy

log = logging.getLogger("repro.engine")


@dataclass
class EngineStats:
    """A snapshot of one engine's activity."""

    workers: int
    submitted: int
    executed: int
    cache_size: int
    cache: Dict[str, float] = field(default_factory=dict)
    coalesced: int = 0
    inflight: int = 0
    cache_backend: str = "json"
    #: Module-cache and sifting counters from incremental sessions run
    #: through this engine (see ``repro.incremental.IncrementalStats``).
    incremental: Dict[str, int] = field(default_factory=dict)
    #: Operations absorbed by a degradation path (cache store failures
    #: turned into misses / memory-only writes).  0 on healthy runs.
    degraded: int = 0
    #: Transient-failure re-executions (pool shards + cache store ops).
    retries: int = 0
    #: Shards recovered serially after a worker death.
    recovered: int = 0
    #: Faults fired by an attached :class:`~repro.resilience.FaultPlan`
    #: in this process (worker-side fires surface as ``recovered``).
    faults_injected: int = 0

    def summary(self) -> str:
        """A compact human-readable stats line."""
        line = (f"workers={self.workers} submitted={self.submitted} "
                f"executed={self.executed} cache_size={self.cache_size} "
                f"hits={self.cache.get('hits', 0):.0f} "
                f"misses={self.cache.get('misses', 0):.0f} "
                f"hit_rate={self.cache.get('hit_rate', 0.0):.1%}"
                + (f" coalesced={self.coalesced}" if self.coalesced
                   else ""))
        if self.degraded or self.retries or self.recovered \
                or self.faults_injected:
            line += (f" degraded={self.degraded} retries={self.retries} "
                     f"recovered={self.recovered} "
                     f"faults_injected={self.faults_injected}")
        return line


@dataclass(frozen=True)
class RunOutcome:
    """How one :meth:`Engine.run_shared` call obtained its result.

    Exactly one of three things happened: the result was served from
    the cache (``cache_hit``), this call waited on another thread's
    identical in-flight computation (``coalesced``), or this call ran
    the job itself (``computed``).
    """

    result: Any
    fingerprint: str
    cache_hit: bool
    coalesced: bool
    wall_time: float

    @property
    def computed(self) -> bool:
        """True when this call performed the actual computation."""
        return not (self.cache_hit or self.coalesced)

    def as_dict(self) -> Dict[str, Any]:
        """The JSON-safe provenance fields (without the result)."""
        return {"fingerprint": self.fingerprint,
                "cache_hit": self.cache_hit,
                "coalesced": self.coalesced,
                "wall_time_s": self.wall_time}


class _InFlight:
    """One in-progress computation other threads may latch onto."""

    __slots__ = ("done", "encoded", "error", "followers")

    def __init__(self):
        self.done = threading.Event()
        self.encoded: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class Engine:
    """Parallel batch evaluation with content-addressed result caching.

    Parameters
    ----------
    workers:
        Worker processes for shardable jobs (``None`` = CPU count;
        1 = fully serial, no subprocesses).
    cache:
        A pre-built :class:`~repro.engine.cache.CacheBackend` to share
        between engines; mutually exclusive with the other ``cache_*``
        parameters.
    cache_capacity:
        Entry capacity of the engine-owned cache.
    cache_path:
        Optional store file backing the cache across sessions (JSON for
        the ``json`` backend, an sqlite database for ``sqlite``).
    cache_backend:
        ``"json"``, ``"sqlite"``, or ``"auto"`` (sqlite for
        ``.db``/``.sqlite``/``.sqlite3`` paths, JSON otherwise); see
        :func:`~repro.engine.cache.create_cache`.
    cache_ttl / cache_max_bytes:
        Expiry and byte-budget eviction (sqlite backend only).
    warm_manifest:
        Optional manifest of hot fingerprints
        (:func:`~repro.engine.cache.write_manifest`) pre-warmed into
        the cache before the first job runs.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` threaded into the
        worker pool and the cache backend — the chaos-testing hook.
        ``None`` (the default) costs one attribute check per site.
    retry:
        :class:`~repro.resilience.RetryPolicy` for transient shard
        failures in the worker pool (default: 3 attempts).
    """

    def __init__(self, workers: Optional[int] = 1,
                 cache: Optional[CacheBackend] = None,
                 cache_capacity: int = 1024,
                 cache_path: Optional[str] = None,
                 cache_backend: str = "auto",
                 cache_ttl: Optional[float] = None,
                 cache_max_bytes: Optional[int] = None,
                 warm_manifest: Optional[str] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry: Optional[RetryPolicy] = None):
        self.fault_plan = fault_plan
        self.pool = WorkerPool(workers, retry=retry,
                               fault_plan=fault_plan)
        if cache is not None:
            if cache_path is not None:
                raise EngineError(
                    "pass either a cache object or a cache_path, not both")
            self.cache = cache
        else:
            self.cache = create_cache(backend=cache_backend,
                                      path=cache_path,
                                      capacity=cache_capacity,
                                      ttl=cache_ttl,
                                      max_bytes=cache_max_bytes)
        if fault_plan is not None:
            self.cache.set_fault_plan(fault_plan)
        if warm_manifest is not None:
            warmed = self.cache.warm_from_manifest(warm_manifest)
            log.info("warmed %d cache entries from manifest %r",
                     warmed, warm_manifest)
        # Shared module-cache/sifting counters for incremental sessions
        # (import at construction time: repro.incremental builds on this
        # package, so a module-level import would be circular).
        from repro.incremental.session import IncrementalStats
        self.incremental = IncrementalStats()
        self._pending: List[Job] = []
        self.submitted = 0
        self.executed = 0
        self.coalesced = 0
        self._inflight: Dict[str, _InFlight] = {}
        # One lock for the in-flight registry, the pending queue and the
        # counters; cache access nests its own (leaf) lock underneath.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Queue a job for the next :meth:`run_all`; returns the job."""
        if not isinstance(job, Job):
            raise EngineError(
                f"expected an engine Job, got {type(job).__name__}")
        with self._lock:
            self._pending.append(job)
            self.submitted += 1
        return job

    @property
    def pending(self) -> int:
        """Number of submitted jobs not yet run."""
        return len(self._pending)

    @property
    def inflight(self) -> int:
        """Number of computations currently running in some thread."""
        with self._lock:
            return len(self._inflight)

    def run(self, job: Job) -> Any:
        """Run one job immediately (cache consulted first)."""
        return self.run_shared(job).result

    def run_shared(self, job: Job, timeout: Optional[float] = None,
                   slots: Optional[threading.Semaphore] = None
                   ) -> RunOutcome:
        """Run one job, sharing any identical in-flight computation.

        The first thread to request a fingerprint becomes its *leader*
        and computes; every thread that requests the same fingerprint
        while the leader runs becomes a *follower* and blocks on the
        leader's completion event instead of recomputing — K concurrent
        identical submissions cost exactly one engine execution.
        Followers decode their result from the leader's encoded payload,
        so every caller receives an equal (for persistable jobs,
        byte-equal through the JSON envelope) result.

        Parameters
        ----------
        timeout:
            Seconds a follower waits for the leader (and a leader waits
            for ``slots``) before an :class:`EngineError` is raised;
            ``None`` waits indefinitely.
        slots:
            Optional semaphore bounding concurrent *computations* — the
            service layer's back-pressure hook.  Cache hits and
            coalesced waits never consume a slot.
        """
        if not isinstance(job, Job):
            raise EngineError(
                f"expected an engine Job, got {type(job).__name__}")
        key = job.fingerprint()
        start = time.perf_counter()
        # The warm-path lookup runs *outside* the engine lock so that a
        # backend with genuinely concurrent readers (sqlite WAL) serves
        # parallel cache hits in parallel; only the miss path takes the
        # lock to join or found an in-flight computation.
        cached = self.cache.get(key)
        if cached is not MISS:
            result = job.decode_result(cached) if job.persistable \
                else cached
            return RunOutcome(result, key, True, False,
                              time.perf_counter() - start)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                # Re-check under the lock (stats-free peek): a leader
                # may have finished between the lookup above and here,
                # and becoming leader again would recompute it.
                cached = self.cache.peek(key)
                if cached is not MISS:
                    result = job.decode_result(cached) \
                        if job.persistable else cached
                    return RunOutcome(result, key, True, False,
                                      time.perf_counter() - start)
                entry = _InFlight()
                self._inflight[key] = entry
                leader = True
            else:
                entry.followers += 1
                leader = False
        if leader:
            return self._run_leader(job, key, entry, timeout, slots,
                                    start)
        return self._wait_follower(job, key, entry, timeout, start)

    def _run_leader(self, job: Job, key: str, entry: _InFlight,
                    timeout: Optional[float],
                    slots: Optional[threading.Semaphore],
                    start: float) -> RunOutcome:
        try:
            if slots is not None and not slots.acquire(timeout=timeout):
                raise EngineError(
                    f"timed out waiting for a compute slot for "
                    f"{job.describe()!r}")
            try:
                # Jobs that manage per-artifact caching themselves (the
                # incremental session) adopt this engine's cache backend
                # and shared counters before running.
                bind = getattr(job, "bind_engine", None)
                if bind is not None:
                    bind(self)
                result = job.run(self.pool)
            finally:
                if slots is not None:
                    slots.release()
            encoded = job.encode_result(result) if job.persistable \
                else result
            self.cache.put(key, encoded, persist=job.persistable)
            entry.encoded = encoded
            with self._lock:
                self.executed += 1
            return RunOutcome(result, key, False, False,
                              time.perf_counter() - start)
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            entry.done.set()

    def _wait_follower(self, job: Job, key: str, entry: _InFlight,
                       timeout: Optional[float],
                       start: float) -> RunOutcome:
        if not entry.done.wait(timeout):
            raise EngineError(
                f"timed out after {timeout:g}s waiting for the "
                f"in-flight computation of {job.describe()!r}")
        if entry.error is not None:
            raise EngineError(
                f"coalesced computation of {job.describe()!r} failed: "
                f"{entry.error}") from entry.error
        result = job.decode_result(entry.encoded) if job.persistable \
            else entry.encoded
        with self._lock:
            self.coalesced += 1
        return RunOutcome(result, key, False, True,
                          time.perf_counter() - start)

    def run_all(self) -> List[Any]:
        """Run every pending job in submission order; returns results."""
        return [outcome.result for outcome in self.run_all_shared()]

    def run_all_shared(self) -> List[RunOutcome]:
        """Like :meth:`run_all`, but returns the full
        :class:`RunOutcome` provenance per job."""
        with self._lock:
            jobs, self._pending = self._pending, []
        return [self.run_shared(job) for job in jobs]

    # ------------------------------------------------------------------
    # Introspection & persistence
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """Activity counters plus the cache's hit/miss statistics and
        the resilience counters (degradations, retries, recoveries)."""
        cache_stats: CacheStats = self.cache.stats
        fired = self.fault_plan.total_fired \
            if self.fault_plan is not None else 0
        with self._lock:
            return EngineStats(workers=self.pool.workers,
                               submitted=self.submitted,
                               executed=self.executed,
                               cache_size=len(self.cache),
                               cache=cache_stats.as_dict(),
                               coalesced=self.coalesced,
                               inflight=len(self._inflight),
                               cache_backend=self.cache.name,
                               incremental=self.incremental.as_dict(),
                               degraded=cache_stats.degraded,
                               retries=cache_stats.retries
                               + self.pool.retries,
                               recovered=self.pool.recovered,
                               faults_injected=fired)

    def save_cache(self, path: Optional[str] = None) -> int:
        """Persist cacheable results to the backend's store file;
        returns the entry count."""
        return self.cache.save(path)

    def warm_cache(self, manifest: str) -> int:
        """Warm the cache from a manifest of hot fingerprints; returns
        how many were found in the backing store."""
        return self.cache.warm_from_manifest(manifest)
