"""The :class:`Engine` façade: jobs → cache → worker pool.

The engine is the one object callers hold: submit declarative jobs
(:mod:`repro.engine.jobs`), run them, and let the engine content-address
every result so repeated requests — the same fault tree quantified at
the same points by an optimizer, a parameter study re-run with one axis
changed, a Monte Carlo check repeated across sessions via the disk cache
— cost a dictionary lookup instead of a recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.cache import MISS, CacheStats, ResultCache
from repro.engine.jobs import Job
from repro.engine.pool import WorkerPool
from repro.errors import EngineError


@dataclass
class EngineStats:
    """A snapshot of one engine's activity."""

    workers: int
    submitted: int
    executed: int
    cache_size: int
    cache: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """A compact human-readable stats line."""
        return (f"workers={self.workers} submitted={self.submitted} "
                f"executed={self.executed} cache_size={self.cache_size} "
                f"hits={self.cache.get('hits', 0):.0f} "
                f"misses={self.cache.get('misses', 0):.0f} "
                f"hit_rate={self.cache.get('hit_rate', 0.0):.1%}")


class Engine:
    """Parallel batch evaluation with content-addressed result caching.

    Parameters
    ----------
    workers:
        Worker processes for shardable jobs (``None`` = CPU count;
        1 = fully serial, no subprocesses).
    cache:
        A pre-built :class:`ResultCache` to share between engines;
        mutually exclusive with ``cache_capacity``/``cache_path``.
    cache_capacity:
        LRU capacity of the engine-owned cache.
    cache_path:
        Optional JSON file backing the cache across sessions; loaded on
        construction when present, written by :meth:`save_cache`.
    """

    def __init__(self, workers: Optional[int] = 1,
                 cache: Optional[ResultCache] = None,
                 cache_capacity: int = 1024,
                 cache_path: Optional[str] = None):
        self.pool = WorkerPool(workers)
        if cache is not None:
            if cache_path is not None:
                raise EngineError(
                    "pass either a cache object or a cache_path, not both")
            self.cache = cache
        else:
            self.cache = ResultCache(capacity=cache_capacity,
                                     path=cache_path)
        self._pending: List[Job] = []
        self.submitted = 0
        self.executed = 0

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Queue a job for the next :meth:`run_all`; returns the job."""
        if not isinstance(job, Job):
            raise EngineError(
                f"expected an engine Job, got {type(job).__name__}")
        self._pending.append(job)
        self.submitted += 1
        return job

    @property
    def pending(self) -> int:
        """Number of submitted jobs not yet run."""
        return len(self._pending)

    def run(self, job: Job) -> Any:
        """Run one job immediately (cache consulted first)."""
        if not isinstance(job, Job):
            raise EngineError(
                f"expected an engine Job, got {type(job).__name__}")
        key = job.fingerprint()
        cached = self.cache.get(key)
        if cached is not MISS:
            return job.decode_result(cached) if job.persistable else cached
        result = job.run(self.pool)
        self.executed += 1
        if job.persistable:
            self.cache.put(key, job.encode_result(result), persist=True)
        else:
            self.cache.put(key, result, persist=False)
        return result

    def run_all(self) -> List[Any]:
        """Run every pending job in submission order; returns results."""
        jobs, self._pending = self._pending, []
        return [self.run(job) for job in jobs]

    # ------------------------------------------------------------------
    # Introspection & persistence
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """Activity counters plus the cache's hit/miss statistics."""
        cache_stats: CacheStats = self.cache.stats
        return EngineStats(workers=self.pool.workers,
                           submitted=self.submitted,
                           executed=self.executed,
                           cache_size=len(self.cache),
                           cache=cache_stats.as_dict())

    def save_cache(self, path: Optional[str] = None) -> int:
        """Persist cacheable results to JSON; returns the entry count."""
        return self.cache.save(path)
