"""Declarative JSON job specs — the wire format of `repro batch`/`serve`.

One JSON description of work, two front ends: the ``repro batch`` CLI
reads job specs from a file, the :mod:`repro.serve` HTTP service accepts
the *same* format over ``POST /jobs``.  This module is the single
translation layer both share — spec → validated
:class:`~repro.engine.jobs.Job` on the way in, job +
:class:`~repro.engine.engine.RunOutcome` → one common *result envelope*
on the way out — so a script developed against batch files runs
unchanged against a server, and vice versa.

A job spec is a JSON object with a ``type`` field::

    {"type": "quantify",   "tree": "fig2", "method": "exact"}
    {"type": "sweep",      "tree": {...},  "axes": {"A": [0.1, 0.2]}}
    {"type": "montecarlo", "tree": "collision", "samples": 100000}

``tree`` is a built-in name (``fig2``/``collision``/``false-alarm``),
an inline tree dict (:func:`repro.fta.tree_from_dict` format), or
``{"file": path}`` (CLI only — the server rejects file references so
clients cannot read server-side paths).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine.engine import RunOutcome
from repro.engine.jobs import (
    IncrementalJob,
    Job,
    MonteCarloJob,
    QuantifyJob,
    SweepJob,
)
from repro.errors import EngineError

#: Job types expressible as JSON specs (the batch/serve wire format).
SPEC_TYPES = ("quantify", "sweep", "montecarlo", "incremental")


def tree_from_spec(spec: Any, allow_files: bool = True):
    """Resolve a ``tree`` spec: builtin name, ``{"file": ...}``, or
    an inline tree dict."""
    from repro.fta import tree_from_dict, tree_from_json
    if isinstance(spec, str):
        from repro.elbtunnel import (
            collision_fault_tree,
            corridor_fault_tree,
            false_alarm_fault_tree,
            fig2_fault_tree,
        )
        builders = {"fig2": fig2_fault_tree,
                    "collision": collision_fault_tree,
                    "false-alarm": false_alarm_fault_tree,
                    "corridor": corridor_fault_tree}
        try:
            return builders[spec]()
        except KeyError:
            raise EngineError(
                f"unknown built-in tree {spec!r}; "
                f"expected one of {sorted(builders)}") from None
    if isinstance(spec, dict) and "file" in spec:
        if not allow_files:
            raise EngineError(
                "tree file references are not allowed here; "
                "inline the tree or name a built-in")
        with open(spec["file"]) as handle:
            return tree_from_json(handle.read())
    if isinstance(spec, dict):
        return tree_from_dict(spec)
    raise EngineError(f"cannot interpret tree spec {spec!r}")


def job_from_spec(spec: Any, compiled: bool = True,
                  allow_files: bool = True) -> Job:
    """Build one engine job from its JSON description."""
    from repro.core.parametric import identity
    from repro.fta import ConstraintPolicy
    if not isinstance(spec, dict) or "type" not in spec:
        raise EngineError(
            f"each job needs a 'type' field, got {spec!r}")
    kind = spec["type"]
    if kind not in SPEC_TYPES:
        raise EngineError(
            f"unknown job type {kind!r}; "
            f"expected one of {', '.join(repr(t) for t in SPEC_TYPES)}")
    tree = tree_from_spec(spec.get("tree", "fig2"),
                          allow_files=allow_files)
    try:
        policy = ConstraintPolicy(spec.get("policy", "independent"))
    except ValueError:
        raise EngineError(
            f"unknown policy {spec.get('policy')!r}; expected one of "
            f"{[p.value for p in ConstraintPolicy]}") from None
    method = spec.get("method", "rare_event")

    def number(field, default, convert):
        try:
            return convert(spec.get(field, default))
        except (TypeError, ValueError):
            raise EngineError(
                f"job field {field!r} must be a number, "
                f"got {spec.get(field)!r}") from None
    if kind == "quantify":
        return QuantifyJob(tree, spec.get("probabilities"),
                           method=method, policy=policy)
    if kind == "incremental":
        sift = spec.get("sift_threshold")
        if sift is not None:
            sift = number("sift_threshold", None, int)
        return IncrementalJob(tree, spec.get("probabilities"),
                              edits=spec.get("edits"),
                              sift_threshold=sift)
    if kind == "sweep":
        axes = spec.get("axes")
        if not axes:
            raise EngineError("sweep jobs need a non-empty 'axes' mapping")
        # Each axis sweeps one leaf's probability directly; fixed
        # 'probabilities' cover the leaves that are not swept.
        assignments = {leaf: identity(leaf) for leaf in axes}
        return SweepJob.from_axes(tree, assignments, axes,
                                  method=method, policy=policy,
                                  probabilities=spec.get("probabilities"),
                                  compiled=compiled)
    return MonteCarloJob(tree, spec.get("probabilities"),
                         samples=number("samples", 100_000, int),
                         seed=number("seed", 0, int),
                         confidence=number("confidence", 0.95, float),
                         shards=number("shards", 1, int))


def jobs_from_payload(payload: Any, compiled: bool = True,
                      allow_files: bool = True) -> List[Job]:
    """Build the job list of one batch request.

    ``payload`` is either a list of job specs, a single job spec
    (an object with a ``type`` field), or an object with a ``jobs``
    list — the shapes accepted by ``repro batch`` files and the
    service's ``POST /jobs`` body alike.
    """
    if isinstance(payload, dict) and "type" in payload:
        specs: Any = [payload]
    elif isinstance(payload, dict):
        specs = payload.get("jobs")
    else:
        specs = payload
    if not isinstance(specs, list) or not specs:
        raise EngineError(
            "job payload must be a non-empty list of jobs (or an "
            "object with a 'jobs' list)")
    return [job_from_spec(spec, compiled=compiled,
                          allow_files=allow_files) for spec in specs]


def result_envelope(job: Job, outcome: RunOutcome,
                    job_id: Optional[str] = None,
                    index: Optional[int] = None) -> Dict[str, Any]:
    """The common JSON result shape of one finished job.

    Emitted per job by ``repro batch --json`` and streamed as the
    ``result`` event by the service, so both surfaces report identical
    provenance: fingerprint, cache hit/miss, whether the computation
    was coalesced with another client's, and the wall time this request
    actually spent.
    """
    envelope: Dict[str, Any] = {}
    if job_id is not None:
        envelope["id"] = job_id
    if index is not None:
        envelope["index"] = index
    envelope.update({
        "type": job.kind,
        "job": job.describe(),
        "fingerprint": outcome.fingerprint,
        "cache_hit": outcome.cache_hit,
        "coalesced": outcome.coalesced,
        "wall_time_s": outcome.wall_time,
        "result": job.encode_result(outcome.result),
    })
    return envelope
