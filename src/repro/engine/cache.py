"""Pluggable result-cache backends keyed by job fingerprints.

Keys are the content-addressed job fingerprints from
:mod:`repro.engine.fingerprint`; values are whatever the owning job chose
to store (the engine stores JSON-safe encoded results for persistable
jobs, raw objects for memory-only ones).  A cache never interprets the
values — it only orders, bounds and persists them.

Two backends implement one :class:`CacheBackend` interface:

:class:`ResultCache` (``"json"``)
    The zero-dependency fallback: an in-memory LRU with optional JSON
    disk persistence.  Fast single-process warm reads (a dict lookup),
    but the whole file is parsed on load and rewritten on save.

:class:`SqliteCache` (``"sqlite"``)
    A WAL-mode sqlite store for the service layer and multi-machine CI:
    concurrent readers (per-thread connections, reads are write-free),
    a single serialized writer, binary npy-style payloads for
    matrix-shaped results (:mod:`repro.engine.payload`), TTL and
    size-based eviction, and durable persistence — a fresh process pays
    one ``open()`` instead of re-parsing the full store.

:func:`create_cache` selects a backend by name (``"auto"`` picks sqlite
for ``.db``/``.sqlite``/``.sqlite3`` paths), and manifests of hot
fingerprints (:func:`write_manifest` / :func:`read_manifest` /
:meth:`CacheBackend.warm`) pre-heat either backend before traffic
arrives.  Both backends store value-equal payloads for the same entries
— fingerprints and coalescing semantics never depend on the backend
(the cross-backend conformance suite pins this).

A corrupt store is never fatal — at construction *or* mid-operation.
The **degradation chain** runs: damaged store file → quarantine
(``.corrupt`` suffix) and re-initialize empty → if the store keeps
failing (or cannot even be re-created), fall through permanently to the
in-memory side table.  Every step logs, increments the
``degraded``/``retries`` counters in :class:`CacheStats` (surfaced in
``EngineStats`` and a service's ``/stats``), and keeps serving: a cache
failure degrades performance, never correctness and never the job.

For chaos testing, every backend exposes the ``cache.get`` /
``cache.put`` / ``payload.decode`` injection sites of a
:class:`~repro.resilience.FaultPlan` (:meth:`CacheBackend.set_fault_plan`);
an attached plan's injected I/O errors take exactly the degradation
path real failures take.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.payload import decode_payload, encode_payload
from repro.errors import EngineError
from repro.resilience import FaultPlan, InjectedFault

log = logging.getLogger("repro.engine.cache")

#: Store failures absorbed by the degradation chain (mid-operation
#: sqlite corruption, disk errors, injected faults — all of OSError,
#: which :class:`~repro.resilience.InjectedFault` subclasses).
_STORE_ERRORS = (sqlite3.Error, OSError)

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()

_PERSIST_VERSION = 1
_MANIFEST_VERSION = 1

#: Path suffixes that make ``backend="auto"`` pick the sqlite store.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache backend.

    ``degraded`` counts operations absorbed by the degradation chain
    (a store failure turned into a miss or a memory-only write);
    ``retries`` counts store operations re-attempted after a reset.
    Both stay 0 on every healthy run.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    degraded: int = 0
    retries: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Counters plus the derived hit rate, for reports."""
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions,
                "degraded": self.degraded, "retries": self.retries,
                "hit_rate": self.hit_rate}


def quarantine(path: str, reason: Any) -> None:
    """Move a corrupt store aside (``<path>.corrupt``) and log it."""
    target = path + ".corrupt"
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - racing cleanup
        target = "<unlinked>"
    log.warning("quarantined corrupt cache file %r -> %r: %s",
                path, target, reason)


class CacheBackend:
    """The interface every result-cache backend implements.

    Subclasses provide :meth:`get` / :meth:`put` / :meth:`peek` /
    :meth:`clear` / :meth:`save` / :meth:`load` / :meth:`hot_keys` /
    ``__len__`` plus a ``_touch`` hook for warming; the base class
    supplies shared statistics, manifest warming and the ``info()``
    skeleton served by a service's ``/stats`` endpoint.
    """

    #: Backend identifier shown in ``info()`` and ``/stats``.
    name: str = "backend"

    #: Optional fault-injection plan (:mod:`repro.resilience`); when
    #: absent the injection hooks cost one attribute check.
    _plan: Optional[FaultPlan] = None

    def __init__(self, capacity: int, path: Optional[str]):
        if capacity <= 0:
            raise EngineError(f"cache capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.path = path
        self.stats = CacheStats()

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Attach (or detach, with ``None``) a fault-injection plan.

        The ``cache.get`` / ``cache.put`` / ``payload.decode`` sites
        fire only while a plan is attached; injected failures are
        absorbed by the same degradation chain real failures take."""
        self._plan = plan

    def _inject(self, site: str) -> None:
        """Fire an attached plan's injection site (no-op without one)."""
        if self._plan is not None:
            self._plan.fire(site)

    @property
    def degraded_mode(self) -> bool:
        """Whether the backend has permanently fallen back to its
        in-memory store (sqlite only; always ``False`` elsewhere)."""
        return False

    # -- required backend operations -----------------------------------
    def get(self, key: str) -> Any:
        """Return the cached value or :data:`MISS`; refreshes recency
        and counts a hit or miss."""
        raise NotImplementedError

    def put(self, key: str, value: Any, persist: bool = True) -> None:
        """Store ``value`` under ``key``, evicting entries over budget.

        ``persist=False`` keeps the entry in memory only (for results
        that cannot be serialized)."""
        raise NotImplementedError

    def peek(self, key: str) -> Any:
        """Like :meth:`get` but without touching statistics or recency
        (the engine's under-lock re-check during coalescing)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        raise NotImplementedError

    def save(self, path: Optional[str] = None) -> int:
        """Flush persistable entries to disk; returns the entry count."""
        raise NotImplementedError

    def load(self, path: Optional[str] = None) -> int:
        """Merge entries from a store file; returns the count read.

        Raises :class:`EngineError` on a corrupt or foreign file — the
        *constructor* recovers by quarantining instead (an explicit
        ``load()`` call asked for exactly that file)."""
        raise NotImplementedError

    def hot_keys(self, limit: int = 64) -> List[str]:
        """The most recently used keys, hottest first — the input to
        :func:`write_manifest`."""
        raise NotImplementedError

    def _touch(self, key: str) -> bool:
        """Refresh one key's recency without counting a lookup; returns
        whether the key is present (and not expired)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op for in-memory backends)."""

    # -- shared behaviour ----------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not MISS

    def warm(self, keys: Iterable[str]) -> int:
        """Pre-heat the listed fingerprints (mark hottest, pull their
        pages/payloads in); returns how many were found."""
        return sum(1 for key in keys if self._touch(key))

    def warm_from_manifest(self, path: str) -> int:
        """Warm from a manifest file; returns how many keys were found."""
        return self.warm(read_manifest(path))

    def info(self) -> Dict[str, Any]:
        """One JSON-safe snapshot of configuration, size and counters
        (the payload behind a service's ``/stats`` endpoint)."""
        return {"backend": self.name,
                "size": len(self),
                "capacity": self.capacity,
                "path": self.path,
                "ttl": getattr(self, "ttl", None),
                "max_bytes": getattr(self, "max_bytes", None),
                "degraded_mode": self.degraded_mode,
                **self.stats.as_dict()}


class ResultCache(CacheBackend):
    """A bounded least-recently-used mapping of fingerprints to results.

    Parameters
    ----------
    capacity:
        Maximum number of entries held in memory; the least recently used
        entry is evicted on overflow.
    path:
        Optional JSON file for persistence.  When given and the file
        exists, its entries are loaded eagerly (a corrupt file is
        quarantined, not fatal); :meth:`save` writes the current
        persistable entries back.  Entries stored with ``persist=False``
        (results that are not JSON-serializable, e.g. optimizer runs)
        live in memory only.

    Every operation that touches the LRU order or the statistics runs
    under one internal lock, so a cache instance can be shared between
    the threads of a long-running service (:mod:`repro.serve`) without
    corrupting the recency list or losing counter updates.
    """

    name = "json"

    def __init__(self, capacity: int = 1024,
                 path: Optional[str] = None):
        super().__init__(capacity, path)
        self._entries: "OrderedDict[str, Tuple[bool, Any]]" = OrderedDict()
        # Reentrant: load() calls put() with the lock already held.
        self._lock = threading.RLock()
        if path is not None and os.path.exists(path):
            try:
                self.load(path)
            except EngineError as exc:
                # A damaged persisted cache must never take the engine
                # down: quarantine it and start cold (every get misses).
                quarantine(path, exc)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Any:
        """Return the cached value or :data:`MISS`; refreshes recency."""
        if self._plan is not None:
            try:
                self._plan.fire("cache.get")
            except InjectedFault:
                # An unavailable cache is a miss, never an error.
                with self._lock:
                    self.stats.degraded += 1
                    self.stats.misses += 1
                return MISS
        with self._lock:
            try:
                entry = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[1]

    def peek(self, key: str) -> Any:
        """The cached value or :data:`MISS`; no stats, no recency."""
        with self._lock:
            entry = self._entries.get(key)
            return MISS if entry is None else entry[1]

    def put(self, key: str, value: Any, persist: bool = True) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full.

        ``persist=False`` keeps the entry out of :meth:`save` (for results
        that cannot be represented in JSON).
        """
        if self._plan is not None:
            try:
                self._plan.fire("cache.put")
            except InjectedFault:
                # A failed cache write drops the entry, never the job.
                with self._lock:
                    self.stats.degraded += 1
                return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (persist, value)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def hot_keys(self, limit: int = 64) -> List[str]:
        """Most recently used keys, hottest first."""
        with self._lock:
            return list(reversed(self._entries))[:max(0, limit)]

    def _touch(self, key: str) -> bool:
        with self._lock:
            if key not in self._entries:
                return False
            self._entries.move_to_end(key)
            return True

    # ------------------------------------------------------------------
    # Disk persistence
    # ------------------------------------------------------------------
    def save(self, path: Optional[str] = None) -> int:
        """Write persistable entries to JSON; returns the entry count.

        The write goes through a temporary file in the target directory
        and an atomic rename, so a crash mid-save never corrupts an
        existing cache file.
        """
        target = path or self.path
        if target is None:
            raise EngineError("no cache path configured for save()")
        # Snapshot under the lock, write outside it: concurrent readers
        # are never blocked on disk I/O.
        with self._lock:
            payload = {
                "version": _PERSIST_VERSION,
                "entries": {key: value
                            for key, (persist, value)
                            in self._entries.items()
                            if persist},
            }
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, target)
        except BaseException:
            if os.path.exists(temp_path):
                os.remove(temp_path)
            raise
        return len(payload["entries"])

    def load(self, path: Optional[str] = None) -> int:
        """Merge entries from a JSON cache file; returns the count read."""
        source = path or self.path
        if source is None:
            raise EngineError("no cache path configured for load()")
        try:
            with open(source) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise EngineError(
                f"cannot load cache file {source!r}: {exc}") from None
        if not isinstance(payload, dict) \
                or payload.get("version") != _PERSIST_VERSION:
            raise EngineError(
                f"unsupported cache file version "
                f"{payload.get('version') if isinstance(payload, dict) else None!r} "
                f"in {source!r}")
        entries = payload.get("entries", {})
        with self._lock:
            for key, value in entries.items():
                self.put(key, value, persist=True)
            # Loading is bookkeeping, not workload; keep the stats clean.
            self.stats.puts -= len(entries)
        return len(entries)


class SqliteCache(CacheBackend):
    """A WAL-mode sqlite result store with binary payloads.

    Built for the serve layer and multi-machine CI: many reader threads
    and processes share one store file, a fresh process opens it in
    constant time (no full-file parse), and matrix-shaped results are
    stored as npy-style binary blobs (:mod:`repro.engine.payload`)
    instead of JSON text.

    Parameters
    ----------
    path:
        The store file (created on first use, ``-wal``/``-shm``
        companions appear alongside).  A corrupt file is quarantined
        and re-initialized, never fatal.
    capacity:
        Maximum entry count; least-recently-accessed rows are evicted.
    ttl:
        Optional seconds before an entry expires; expired rows read as
        misses and are purged on the next write.
    max_bytes:
        Optional payload-size budget; oldest-accessed rows are evicted
        until under budget (the newest entry always survives).
    timeout:
        Seconds a writer waits on a cross-process sqlite lock.
    recency_resolution:
        A read refreshes the stored access stamp only when the stamp is
        older than this many seconds, keeping the contended warm-read
        path write-free (eviction needs recency at eviction granularity,
        not per-read precision).

    Concurrency: each thread gets its own read connection (WAL lets
    readers proceed during a write); writes are serialized through one
    in-process lock, and across processes by sqlite's own locking.
    Entries stored with ``persist=False`` live in an in-memory LRU side
    table, exactly as in the JSON backend.
    """

    name = "sqlite"

    #: Consecutive store failures before the backend gives up on disk
    #: and degrades permanently to its in-memory side table.
    _MAX_STORE_FAILURES = 3

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS cache (
            key      TEXT PRIMARY KEY,
            payload  BLOB NOT NULL,
            nbytes   INTEGER NOT NULL,
            created  REAL NOT NULL,
            accessed REAL NOT NULL
        );
        CREATE INDEX IF NOT EXISTS cache_accessed ON cache(accessed);
    """

    def __init__(self, path: str, capacity: int = 65536,
                 ttl: Optional[float] = None,
                 max_bytes: Optional[int] = None,
                 timeout: float = 30.0,
                 recency_resolution: float = 60.0):
        if not path:
            raise EngineError("the sqlite cache backend requires a path")
        super().__init__(capacity, path)
        if ttl is not None and ttl <= 0:
            raise EngineError(f"cache ttl must be > 0, got {ttl}")
        if max_bytes is not None and max_bytes <= 0:
            raise EngineError(
                f"cache max_bytes must be > 0, got {max_bytes}")
        self.ttl = ttl
        self.max_bytes = max_bytes
        self.timeout = timeout
        self.recency_resolution = recency_resolution
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        # One lock for writes + in-process bookkeeping (stats, memory
        # side table); reads only take it to bump counters.
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._generation = 0
        #: Permanently memory-only after repeated store failures.
        self._degraded = False
        #: Consecutive store failures (reset by any successful store op).
        self._store_failures = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._init_schema()

    # ------------------------------------------------------------------
    # Connections & recovery
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self.timeout,
                               isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
        return conn

    def _conn(self) -> sqlite3.Connection:
        cached = getattr(self._local, "conn", None)
        if cached is not None \
                and self._local.generation == self._generation:
            return cached
        conn = self._connect()
        self._local.conn = conn
        self._local.generation = self._generation
        with self._lock:
            self._connections.append(conn)
        return conn

    def _init_schema(self) -> None:
        try:
            self._conn().executescript(self._SCHEMA)
        except sqlite3.DatabaseError as exc:
            # Truncated or garbage store: quarantine and start empty
            # rather than taking the engine down.
            self._reset_storage(exc)

    def _reset_storage(self, reason: Any) -> None:
        """Quarantine the store file and re-create an empty schema.

        Never raises: when even re-creation fails (disk gone,
        directory unwritable) the backend degrades to memory-only
        instead of propagating the failure into a job."""
        with self._lock:
            for conn in self._connections:
                try:
                    conn.close()
                except sqlite3.Error:  # pragma: no cover - best effort
                    pass
            self._connections.clear()
            self._generation += 1
            try:
                if os.path.exists(self.path):
                    quarantine(self.path, reason)
                for suffix in ("-wal", "-shm"):
                    companion = self.path + suffix
                    if os.path.exists(companion):
                        os.remove(companion)
                self._conn().executescript(self._SCHEMA)
            except _STORE_ERRORS as exc:
                self._enter_degraded("reset", exc)

    def _enter_degraded(self, op: str, reason: Any) -> None:
        """Fall back permanently to the in-memory side table."""
        with self._lock:
            if self._degraded:
                return
            self._degraded = True
        log.error("sqlite cache store %r disabled after failure during "
                  "%s (%s); serving from memory only", self.path, op,
                  reason)

    def _absorb_failure(self, op: str, exc: BaseException) -> None:
        """Run the degradation chain for a mid-operation store failure.

        First failures quarantine + re-initialize the store file;
        :data:`_MAX_STORE_FAILURES` consecutive failures degrade the
        backend to memory-only.  Never raises — a cache failure costs
        performance, not the job."""
        with self._lock:
            self.stats.degraded += 1
            self._store_failures += 1
            give_up = self._store_failures >= self._MAX_STORE_FAILURES
        if give_up:
            self._enter_degraded(op, exc)
            return
        log.warning("sqlite cache %s failed (%s); resetting store %r",
                    op, exc, self.path)
        self._reset_storage(exc)

    @property
    def degraded_mode(self) -> bool:
        """Whether the store is disabled and only memory is serving."""
        return self._degraded

    def close(self) -> None:
        """Close every connection this instance opened."""
        with self._lock:
            for conn in self._connections:
                try:
                    conn.close()
                except sqlite3.Error:  # pragma: no cover - best effort
                    pass
            self._connections.clear()
            self._generation += 1

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            memory = len(self._memory)
            if self._degraded:
                return memory
        try:
            row = self._conn().execute(
                "SELECT COUNT(*) FROM cache").fetchone()
        except _STORE_ERRORS as exc:
            self._absorb_failure("len", exc)
            return memory
        return memory + row[0]

    def _expired(self, created: float, now: float) -> bool:
        return self.ttl is not None and now - created > self.ttl

    def _fetch(self, key: str) -> Optional[Tuple[bytes, float, float]]:
        return self._conn().execute(
            "SELECT payload, created, accessed FROM cache "
            "WHERE key = ?", (key,)).fetchone()

    def _drop(self, key: str, count_eviction: bool) -> None:
        with self._lock:
            self._conn().execute(
                "DELETE FROM cache WHERE key = ?", (key,))
            if count_eviction:
                self.stats.evictions += 1

    def get(self, key: str) -> Any:
        """Decode and return the stored payload, or :data:`MISS`.

        The warm path is write-free: recency stamps are refreshed only
        when older than ``recency_resolution`` seconds, so concurrent
        readers never serialize on the writer lock.  Any store failure
        mid-lookup (corruption, I/O error, injected fault) runs the
        degradation chain and reads as a miss.
        """
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return self._memory[key]
            if self._degraded:
                self.stats.misses += 1
                return MISS
        try:
            return self._get_store(key)
        except _STORE_ERRORS as exc:
            self._absorb_failure("get", exc)
            with self._lock:
                self.stats.misses += 1
            return MISS

    def _get_store(self, key: str) -> Any:
        """The healthy-path lookup; raises on any store failure."""
        self._inject("cache.get")
        row = self._fetch(key)
        now = time.time()
        if row is None:
            with self._lock:
                self.stats.misses += 1
                self._store_failures = 0
            return MISS
        payload, created, accessed = row
        if self._expired(created, now):
            self._drop(key, count_eviction=True)
            with self._lock:
                self.stats.misses += 1
                self._store_failures = 0
            return MISS
        if self._plan is not None:
            payload = self._plan.pulse("payload.decode", payload)
        try:
            value = decode_payload(payload)
        except EngineError as exc:
            # A mangled payload is a corrupt *entry*, not a corrupt
            # store: drop the row and miss, no quarantine.
            log.warning("dropping undecodable cache entry %r: %s",
                        key, exc)
            self._drop(key, count_eviction=False)
            with self._lock:
                self.stats.degraded += 1
                self.stats.misses += 1
            return MISS
        if now - accessed > self.recency_resolution:
            self._stamp(key, now)
        with self._lock:
            self.stats.hits += 1
            self._store_failures = 0
        return value

    def peek(self, key: str) -> Any:
        """The decoded value or :data:`MISS`; no stats, no recency.

        Peek is the engine's under-lock coalescing re-check: a failing
        store reads as a miss here and lets :meth:`get` run the
        degradation chain on the next full lookup."""
        with self._lock:
            if key in self._memory:
                return self._memory[key]
            if self._degraded:
                return MISS
        try:
            row = self._fetch(key)
            if row is None or self._expired(row[1], time.time()):
                return MISS
            return decode_payload(row[0])
        except (EngineError,) + _STORE_ERRORS:
            return MISS

    def _stamp(self, key: str, now: float) -> None:
        with self._lock:
            self._conn().execute(
                "UPDATE cache SET accessed = ? WHERE key = ?",
                (now, key))

    def _memory_put(self, key: str, value: Any) -> None:
        """Store in the in-memory LRU side table only."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
            self._memory[key] = value
            self.stats.puts += 1
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    def put(self, key: str, value: Any, persist: bool = True) -> None:
        """Encode ``value`` to a binary payload and store it durably.

        The insert and the eviction pass run as one immediate
        transaction under the single-writer lock.  When the store
        fails mid-write the degradation chain runs — reset + one
        retry, then the in-memory side table — so the result is
        always cached *somewhere* and the job always completes."""
        if not persist or self._degraded:
            self._memory_put(key, value)
            return
        blob = encode_payload(value)
        try:
            self._inject("cache.put")
            self._put_store(key, blob)
            return
        except _STORE_ERRORS as exc:
            self._absorb_failure("put", exc)
        if not self._degraded:
            # One retry against the freshly reset store.
            with self._lock:
                self.stats.retries += 1
            try:
                self._put_store(key, blob)
                return
            except _STORE_ERRORS as exc:
                self._absorb_failure("put-retry", exc)
        # The write must not be lost with the store: keep it in memory.
        self._memory_put(key, value)

    def _put_store(self, key: str, blob: bytes) -> None:
        """The healthy-path insert; raises on any store failure."""
        now = time.time()
        with self._lock:
            conn = self._conn()
            try:
                conn.execute("BEGIN IMMEDIATE")
                conn.execute(
                    "INSERT OR REPLACE INTO cache "
                    "(key, payload, nbytes, created, accessed) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (key, sqlite3.Binary(blob), len(blob), now, now))
                evicted = self._evict(conn, key, now)
                conn.execute("COMMIT")
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:  # pragma: no cover - best effort
                    pass
                raise
            self.stats.puts += 1
            self.stats.evictions += evicted
            self._store_failures = 0

    def _evict(self, conn: sqlite3.Connection, fresh_key: str,
               now: float) -> int:
        """TTL purge + capacity + byte-budget eviction; returns count.

        Victims are least-recently-accessed first; the entry written in
        this transaction (``fresh_key``) is never chosen, so a single
        oversized result still lands in the cache.
        """
        evicted = 0
        if self.ttl is not None:
            cursor = conn.execute(
                "DELETE FROM cache WHERE created <= ? AND key != ?",
                (now - self.ttl, fresh_key))
            evicted += cursor.rowcount
        count = conn.execute("SELECT COUNT(*) FROM cache").fetchone()[0]
        if count > self.capacity:
            cursor = conn.execute(
                "DELETE FROM cache WHERE key IN ("
                "  SELECT key FROM cache WHERE key != ?"
                "  ORDER BY accessed ASC, key ASC LIMIT ?)",
                (fresh_key, count - self.capacity))
            evicted += cursor.rowcount
        if self.max_bytes is not None:
            total = conn.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM cache"
            ).fetchone()[0]
            if total > self.max_bytes:
                victims = []
                for key, nbytes in conn.execute(
                        "SELECT key, nbytes FROM cache WHERE key != ? "
                        "ORDER BY accessed ASC, key ASC", (fresh_key,)):
                    victims.append(key)
                    total -= nbytes
                    if total <= self.max_bytes:
                        break
                if victims:
                    marks = ",".join("?" * len(victims))
                    cursor = conn.execute(
                        f"DELETE FROM cache WHERE key IN ({marks})",
                        victims)
                    evicted += cursor.rowcount
        return evicted

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._memory.clear()
            if self._degraded:
                return
        try:
            self._conn().execute("DELETE FROM cache")
        except _STORE_ERRORS as exc:
            self._absorb_failure("clear", exc)

    def hot_keys(self, limit: int = 64) -> List[str]:
        """Most recently accessed persistent keys, hottest first."""
        with self._lock:
            if self._degraded:
                return list(reversed(self._memory))[:max(0, limit)]
        try:
            rows = self._conn().execute(
                "SELECT key FROM cache ORDER BY accessed DESC, key ASC "
                "LIMIT ?", (max(0, limit),)).fetchall()
        except _STORE_ERRORS as exc:
            self._absorb_failure("hot_keys", exc)
            return []
        return [row[0] for row in rows]

    def _touch(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                return True
            if self._degraded:
                return False
        try:
            row = self._fetch(key)
            if row is None or self._expired(row[1], time.time()):
                return False
            # Decoding pulls the payload through the page cache, so the
            # first real request after warming skips the cold read.
            decode_payload(row[0])
            self._stamp(key, time.time())
            return True
        except EngineError:
            return False
        except _STORE_ERRORS as exc:
            self._absorb_failure("touch", exc)
            return False

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Optional[str] = None) -> int:
        """Checkpoint the WAL (or back up to ``path``); returns the
        persistent entry count.  Unlike the JSON backend, every put is
        already durable — save only compacts or copies.  In degraded
        mode save is a no-op returning 0 (shutdown must never fail on
        a cache that already failed)."""
        target = path or self.path
        with self._lock:
            if self._degraded:
                log.warning("sqlite cache degraded; save(%r) skipped",
                            target)
                return 0
            conn = self._conn()
            try:
                if os.path.abspath(target) == os.path.abspath(self.path):
                    conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
                else:
                    backup = sqlite3.connect(target)
                    try:
                        conn.backup(backup)
                    finally:
                        backup.close()
                return conn.execute(
                    "SELECT COUNT(*) FROM cache").fetchone()[0]
            except sqlite3.DatabaseError as exc:
                raise EngineError(
                    f"cannot save sqlite cache to {target!r}: "
                    f"{exc}") from None

    def load(self, path: Optional[str] = None) -> int:
        """Merge entries from another sqlite store file.

        An explicit load of a store the backend can no longer reach is
        an error (the caller asked for exactly that data); implicit
        resilience applies only to the hot get/put path."""
        source = path or self.path
        if self._degraded:
            raise EngineError(
                f"sqlite cache store {self.path!r} is degraded "
                f"(memory-only); cannot load {source!r}")
        if os.path.abspath(source) == os.path.abspath(self.path):
            try:
                return self._conn().execute(
                    "SELECT COUNT(*) FROM cache").fetchone()[0]
            except sqlite3.DatabaseError as exc:
                self._reset_storage(exc)
                return 0
        with self._lock:
            conn = self._conn()
            try:
                conn.execute("ATTACH DATABASE ? AS src", (source,))
                try:
                    count = conn.execute(
                        "SELECT COUNT(*) FROM src.cache").fetchone()[0]
                    conn.execute(
                        "INSERT OR REPLACE INTO cache "
                        "SELECT * FROM src.cache")
                finally:
                    conn.execute("DETACH DATABASE src")
            except sqlite3.DatabaseError as exc:
                raise EngineError(
                    f"cannot load cache file {source!r}: {exc}") from None
        return count


#: Registered backend names (``"auto"`` resolves by path suffix).
BACKENDS = ("auto", "json", "sqlite")


def create_cache(backend: str = "auto", path: Optional[str] = None,
                 capacity: int = 1024, ttl: Optional[float] = None,
                 max_bytes: Optional[int] = None) -> CacheBackend:
    """Build a cache backend by name.

    ``"auto"`` picks sqlite when the path carries an sqlite suffix
    (:data:`SQLITE_SUFFIXES`) and the JSON/LRU fallback otherwise
    (including the no-path, memory-only case).  TTL and byte budgets are
    sqlite-only features; requesting them on the JSON backend is an
    error rather than a silent no-op.
    """
    if backend not in BACKENDS:
        raise EngineError(
            f"unknown cache backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    if backend == "auto":
        backend = "sqlite" if path is not None and \
            path.lower().endswith(SQLITE_SUFFIXES) else "json"
    if backend == "sqlite":
        if path is None:
            raise EngineError(
                "the sqlite cache backend requires a cache path")
        return SqliteCache(path, capacity=capacity, ttl=ttl,
                           max_bytes=max_bytes)
    if ttl is not None or max_bytes is not None:
        raise EngineError(
            "ttl/max_bytes eviction requires the sqlite cache backend")
    return ResultCache(capacity=capacity, path=path)


# ----------------------------------------------------------------------
# Warming manifests
# ----------------------------------------------------------------------
def write_manifest(path: str, keys: Sequence[str]) -> int:
    """Write a manifest of hot fingerprints; returns the key count.

    Typically fed from :meth:`CacheBackend.hot_keys` at the end of a
    run, and consumed by :meth:`CacheBackend.warm_from_manifest` (or the
    ``--warm-manifest`` CLI flags) before the next deployment takes
    traffic.
    """
    payload = {"version": _MANIFEST_VERSION,
               "keys": [str(key) for key in keys]}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.remove(temp_path)
        raise
    return len(payload["keys"])


def read_manifest(path: str) -> List[str]:
    """Read a warming manifest; raises :class:`EngineError` when the
    file is missing or malformed."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise EngineError(
            f"cannot read warming manifest {path!r}: {exc}") from None
    if not isinstance(payload, dict) \
            or payload.get("version") != _MANIFEST_VERSION \
            or not isinstance(payload.get("keys"), list):
        raise EngineError(
            f"not a warming manifest: {path!r}")
    return [str(key) for key in payload["keys"]]
