"""LRU result cache with optional JSON disk persistence.

Keys are the content-addressed job fingerprints from
:mod:`repro.engine.fingerprint`; values are whatever the owning job chose
to store (the engine stores JSON-safe encoded results for persistable
jobs, raw objects for memory-only ones).  The cache never interprets the
values — it only orders, bounds and persists them.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import EngineError

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()

_PERSIST_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Counters plus the derived hit rate, for reports."""
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions,
                "hit_rate": self.hit_rate}


class ResultCache:
    """A bounded least-recently-used mapping of fingerprints to results.

    Parameters
    ----------
    capacity:
        Maximum number of entries held in memory; the least recently used
        entry is evicted on overflow.
    path:
        Optional JSON file for persistence.  When given and the file
        exists, its entries are loaded eagerly; :meth:`save` writes the
        current persistable entries back.  Entries stored with
        ``persist=False`` (results that are not JSON-serializable, e.g.
        optimizer runs) live in memory only.

    Every operation that touches the LRU order or the statistics runs
    under one internal lock, so a cache instance can be shared between
    the threads of a long-running service (:mod:`repro.serve`) without
    corrupting the recency list or losing counter updates.
    """

    def __init__(self, capacity: int = 1024,
                 path: Optional[str] = None):
        if capacity <= 0:
            raise EngineError(f"cache capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.path = path
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Tuple[bool, Any]]" = OrderedDict()
        # Reentrant: load() calls put() with the lock already held.
        self._lock = threading.RLock()
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Any:
        """Return the cached value or :data:`MISS`; refreshes recency."""
        with self._lock:
            try:
                entry = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[1]

    def put(self, key: str, value: Any, persist: bool = True) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full.

        ``persist=False`` keeps the entry out of :meth:`save` (for results
        that cannot be represented in JSON).
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (persist, value)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def info(self) -> Dict[str, Any]:
        """One JSON-safe snapshot of configuration, size and counters
        (the payload behind a service's ``/stats`` endpoint)."""
        with self._lock:
            return {"size": len(self._entries),
                    "capacity": self.capacity,
                    "path": self.path,
                    **self.stats.as_dict()}

    # ------------------------------------------------------------------
    # Disk persistence
    # ------------------------------------------------------------------
    def save(self, path: Optional[str] = None) -> int:
        """Write persistable entries to JSON; returns the entry count.

        The write goes through a temporary file in the target directory
        and an atomic rename, so a crash mid-save never corrupts an
        existing cache file.
        """
        target = path or self.path
        if target is None:
            raise EngineError("no cache path configured for save()")
        # Snapshot under the lock, write outside it: concurrent readers
        # are never blocked on disk I/O.
        with self._lock:
            payload = {
                "version": _PERSIST_VERSION,
                "entries": {key: value
                            for key, (persist, value)
                            in self._entries.items()
                            if persist},
            }
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, target)
        except BaseException:
            if os.path.exists(temp_path):
                os.remove(temp_path)
            raise
        return len(payload["entries"])

    def load(self, path: Optional[str] = None) -> int:
        """Merge entries from a JSON cache file; returns the count read."""
        source = path or self.path
        if source is None:
            raise EngineError("no cache path configured for load()")
        try:
            with open(source) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise EngineError(
                f"cannot load cache file {source!r}: {exc}") from None
        if payload.get("version") != _PERSIST_VERSION:
            raise EngineError(
                f"unsupported cache file version "
                f"{payload.get('version')!r} in {source!r}")
        entries = payload.get("entries", {})
        with self._lock:
            for key, value in entries.items():
                self.put(key, value, persist=True)
            # Loading is bookkeeping, not workload; keep the stats clean.
            self.stats.puts -= len(entries)
        return len(entries)
