"""Parallel batch-evaluation engine with content-addressed caching.

The paper's safety-optimization loop quantifies the same fault trees
over and over — across parameter grids (Fig. 5/6), optimizer
trajectories, and Monte Carlo cross-checks.  This package turns those
repeated evaluations into declarative *jobs* executed through one
engine:

* :mod:`repro.engine.jobs`        — job specs with validation,
* :mod:`repro.engine.fingerprint` — canonical structural hashing so
  semantically identical requests share a cache key,
* :mod:`repro.engine.cache`       — pluggable result-cache backends
  behind one :class:`CacheBackend` interface: the JSON/LRU fallback and
  a WAL-mode sqlite store with TTL/size eviction and manifest warming,
* :mod:`repro.engine.payload`     — the binary (npy-style) payload
  codec the sqlite backend stores matrix-shaped results with,
* :mod:`repro.engine.pool`        — a multiprocessing worker pool with a
  serial fallback and deterministic per-shard Monte Carlo seeding,
* :mod:`repro.engine.specs`       — the JSON wire format shared by
  ``repro batch`` and the :mod:`repro.serve` HTTP service (spec → job,
  job + outcome → result envelope),
* :mod:`repro.engine.engine`      — the :class:`Engine` façade tying
  jobs → cache → pool, with thread-safe request coalescing
  (:meth:`Engine.run_shared`) for multi-tenant use.

Quickstart::

    from repro.engine import Engine, SweepJob

    engine = Engine(workers=4, cache_path="results.json")
    job = SweepJob.from_axes(tree, {"OT1": p_ot1, "OT2": p_ot2},
                             axes={"T1": t1_values, "T2": t2_values})
    surface = engine.run(job)      # recomputed
    surface = engine.run(job)      # served from the cache
    print(engine.stats().summary())
"""

from repro.engine.cache import (
    BACKENDS,
    CacheBackend,
    CacheStats,
    ResultCache,
    SqliteCache,
    create_cache,
    read_manifest,
    write_manifest,
)
from repro.engine.payload import decode_payload, encode_payload
from repro.engine.engine import Engine, EngineStats, RunOutcome
from repro.engine.fingerprint import (
    canonical_tree,
    grid_fingerprint,
    job_fingerprint,
    model_fingerprint,
    options_fingerprint,
    parametric_fingerprint,
    tree_fingerprint,
    values_fingerprint,
)
from repro.engine.jobs import (
    IncrementalJob,
    Job,
    MonteCarloJob,
    OptimizeJob,
    QuantifyJob,
    SimulationJob,
    SweepJob,
    SweepResult,
    UncertaintyJob,
)
from repro.engine.pool import WorkerPool, default_workers, derive_seed
from repro.engine.specs import (
    SPEC_TYPES,
    job_from_spec,
    jobs_from_payload,
    result_envelope,
    tree_from_spec,
)

__all__ = [
    "Engine",
    "EngineStats",
    "RunOutcome",
    "Job",
    "IncrementalJob",
    "QuantifyJob",
    "SweepJob",
    "SweepResult",
    "MonteCarloJob",
    "SimulationJob",
    "UncertaintyJob",
    "OptimizeJob",
    "CacheBackend",
    "ResultCache",
    "SqliteCache",
    "create_cache",
    "BACKENDS",
    "CacheStats",
    "read_manifest",
    "write_manifest",
    "encode_payload",
    "decode_payload",
    "WorkerPool",
    "default_workers",
    "derive_seed",
    "tree_fingerprint",
    "canonical_tree",
    "model_fingerprint",
    "parametric_fingerprint",
    "values_fingerprint",
    "grid_fingerprint",
    "options_fingerprint",
    "job_fingerprint",
    "SPEC_TYPES",
    "job_from_spec",
    "jobs_from_payload",
    "result_envelope",
    "tree_from_spec",
]
