"""Worker pool: multiprocessing execution with crash-proof fallbacks.

The pool runs *payload lists* through module-level worker functions (the
only kind :mod:`multiprocessing` can ship to child processes).  Payloads
carry plain library objects — fault trees, probability dicts, cut set
collections — all of which pickle; parametric probabilities (arbitrary
closures) never cross the process boundary: sweep jobs evaluate them in
the parent and ship the resulting per-point override dicts instead.

When only one worker is configured, only one payload exists, or a pool
cannot be created (restricted environments, missing semaphores), the same
worker functions run serially in-process — results are identical either
way, by construction.

Failure handling is the point of this layer: every payload is a *pure
function* of its contents (shard seeds derive from ``(base_seed,
index)``), so a shard lost to a dead worker process, an out-of-memory
kill, a transient I/O error or a stuck worker can always be re-executed
— serially, in the parent — with a bit-identical result.
:meth:`WorkerPool.map` retries transient in-process failures with
capped jittered backoff (:class:`~repro.resilience.RetryPolicy`),
recovers crashed/poisoned shards serially, and bounds every wait with a
deadline when one is given; the ``retries``/``recovered`` counters feed
:class:`~repro.engine.engine.EngineStats`.  A
:class:`~repro.resilience.FaultPlan` threads through as the
``pool.shard`` injection site (free when absent).
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.fta.quantify import hazard_probability
from repro.resilience import FaultPlan, RetryPolicy

log = logging.getLogger("repro.engine.pool")

#: In-process failures worth retrying: real (or injected) I/O errors
#: and allocation failures.  Library validation errors (ReproError) are
#: deterministic and propagate immediately.
TRANSIENT_FAILURES = (OSError, MemoryError)


def default_workers() -> int:
    """The machine's CPU count (at least 1)."""
    return os.cpu_count() or 1


def derive_seed(seed: int, shard: int) -> int:
    """Deterministic, well-separated per-shard RNG seed.

    Hash-derived so that neighbouring base seeds cannot collide with
    neighbouring shard indices (as ``seed + shard`` would); independent of
    ``PYTHONHASHSEED``.
    """
    raw = hashlib.sha256(f"mc-shard:{seed}:{shard}".encode()).digest()
    return int.from_bytes(raw[:8], "big")


def chunk_indices(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into ``chunks`` near-equal (start, stop) runs."""
    if count <= 0:
        raise EngineError(f"cannot chunk {count} items")
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class WorkerPool:
    """A fixed-size process pool with retry, crash recovery and
    graceful serial degradation.

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` means the CPU count.  With
        one worker everything runs in-process (no pickling, no fork).
    retry:
        Backoff policy for transient in-process failures
        (:data:`TRANSIENT_FAILURES`); defaults to 3 attempts with
        capped jittered exponential backoff.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` fired at the
        ``pool.shard`` site around each payload (in workers, a
        ``crash`` fault kills the worker process — the recovery path
        under test).  Costs one ``is None`` check when absent.
    """

    def __init__(self, workers: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None):
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        #: Transient-failure re-executions (backoff retries).
        self.retries = 0
        #: Shards recovered serially after a dead/poisoned/stuck worker.
        self.recovered = 0

    @property
    def is_parallel(self) -> bool:
        """True when payloads may run in separate processes."""
        return self.workers > 1

    # ------------------------------------------------------------------
    # Serial execution (also the recovery path)
    # ------------------------------------------------------------------
    def _run_one(self, fn: Callable[[Any], Any], payload: Any,
                 index: int, inject: bool) -> Any:
        """Run one payload in-process with bounded retries.

        ``inject=False`` marks a *recovery* re-execution: the fault
        already happened (a worker died), so the plan must not fire
        again — recovery is the authoritative serial run.
        """
        attempts = self.retry.max_attempts
        for attempt in range(attempts):
            try:
                if inject and attempt == 0 \
                        and self.fault_plan is not None:
                    self.fault_plan.fire("pool.shard", index=index)
                return fn(payload)
            except TRANSIENT_FAILURES as exc:
                if attempt + 1 >= attempts:
                    raise
                self.retries += 1
                log.warning(
                    "shard %d failed (%s: %s); retry %d/%d",
                    index, type(exc).__name__, exc, attempt + 1,
                    attempts - 1)
                pause = self.retry.delay(attempt, key=f"shard:{index}")
                if pause > 0:
                    time.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover

    def _map_serial(self, fn: Callable[[Any], Any],
                    payloads: Sequence[Any]) -> List[Any]:
        return [self._run_one(fn, payload, index, inject=True)
                for index, payload in enumerate(payloads)]

    # ------------------------------------------------------------------
    # Parallel execution with crash recovery
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any],
            timeout: Optional[float] = None) -> List[Any]:
        """Apply a module-level function to every payload, in order.

        Results are returned in payload order regardless of completion
        order.  Deterministic worker exceptions propagate to the caller
        unchanged; *infrastructure* failures do not fail the job:

        * a worker process that dies (``os._exit``, OOM-kill, injected
          crash) breaks the executor — every shard without a result is
          re-executed serially in the parent, bit-identical because
          payloads are pure functions of their contents;
        * transient failures (:data:`TRANSIENT_FAILURES`) are retried
          with capped jittered backoff;
        * with ``timeout`` (seconds for the whole parallel phase), a
          stuck worker cannot hang the job: unfinished shards are
          abandoned and recovered serially.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if self.workers == 1 or len(payloads) == 1:
            return self._map_serial(fn, payloads)
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(self.workers, len(payloads)),
                mp_context=multiprocessing.get_context())
        except (OSError, ValueError, ImportError):
            # Sandboxes without /dev/shm or fork; same results, serially.
            return self._map_serial(fn, payloads)
        plan = self.fault_plan
        deadline = None if timeout is None \
            else _monotonic() + timeout
        results: List[Any] = [None] * len(payloads)
        lost: List[int] = []
        try:
            futures = []
            broken = False
            for index, payload in enumerate(payloads):
                try:
                    futures.append(executor.submit(
                        _run_shard, fn, payload, plan, index))
                except BrokenExecutor:
                    # A worker died while we were still submitting;
                    # everything not yet submitted recovers serially.
                    broken = True
                    lost.extend(range(index, len(payloads)))
                    break
            for index, future in enumerate(futures):
                if broken and not future.done():
                    # The executor died: no further result can arrive.
                    lost.append(index)
                    continue
                try:
                    remaining = None if deadline is None \
                        else max(0.0, deadline - _monotonic())
                    results[index] = future.result(timeout=remaining)
                except (BrokenExecutor, OSError, MemoryError) as exc:
                    # Dead worker (or a transient failure pickled back):
                    # recover this shard serially in the parent.
                    log.warning(
                        "shard %d lost to %s: %s; recovering serially",
                        index, type(exc).__name__, exc)
                    lost.append(index)
                    if isinstance(exc, BrokenExecutor):
                        broken = True
                except FutureTimeoutError:
                    log.warning(
                        "shard %d missed the %gs deadline; "
                        "recovering serially", index, timeout)
                    lost.append(index)
                    broken = True  # abandon the stragglers too
        finally:
            # cancel_futures makes shutdown non-blocking even with a
            # hung worker still holding a task.
            executor.shutdown(wait=False, cancel_futures=True)
        for index in lost:
            self.recovered += 1
            results[index] = self._run_one(fn, payloads[index], index,
                                           inject=False)
        return results


_monotonic = time.monotonic


# ----------------------------------------------------------------------
# Worker functions (module-level: must be picklable by reference)
# ----------------------------------------------------------------------
def _run_shard(fn: Callable[[Any], Any], payload: Any,
               plan: Optional[FaultPlan], index: int) -> Any:
    """Run one payload inside a worker process.

    Fires the fault plan at ``pool.shard`` with ``worker=True``: a
    ``crash`` fault here terminates the worker process itself
    (``os._exit``) — the real failure mode the parent's recovery path
    must survive.
    """
    if plan is not None:
        plan.fire("pool.shard", index=index, worker=True)
    return fn(payload)


def run_quantify_chunk(payload: Tuple) -> List[Tuple[int, float]]:
    """Quantify one chunk of a parametric sweep.

    ``payload`` is ``(tree, cut_sets, method, policy, chunk)`` — with an
    optional trailing ``compiled`` flag — where ``chunk`` is a list of
    ``(index, overrides)`` pairs; returns ``(index, probability)`` pairs
    so the parent can reassemble the grid in order.  With ``compiled``
    the chunk is evaluated as one :mod:`repro.compile` batch,
    bit-identical to the per-point path.  Each payload ships (and
    unpickles) its own tree copy, so the compile memo cannot hit across
    chunks: compilation happens once per *chunk* — amortized over the
    chunk's points, still far cheaper than the per-point walk.
    """
    tree, cut_sets, method, policy, chunk = payload[:5]
    compiled = payload[5] if len(payload) > 5 else False
    if compiled and chunk:
        from repro.compile import compile_tree, supports_compilation
        if supports_compilation(tree, method):
            evaluator = compile_tree(tree, method, policy,
                                     cut_sets=cut_sets)
            values = evaluator.evaluate(
                [overrides for _index, overrides in chunk])
            return [(index, float(value))
                    for (index, _o), value in zip(chunk, values)]
    return [(index,
             hazard_probability(tree, overrides, method=method,
                                policy=policy, cut_sets=cut_sets))
            for index, overrides in chunk]


def run_monte_carlo_shard(payload: Tuple) -> Tuple[int, int]:
    """Run one Monte Carlo shard; returns ``(occurrences, samples)``.

    ``payload`` is ``(tree, probabilities, samples, seed)``.
    """
    from repro.sim.montecarlo import monte_carlo_counts
    tree, probabilities, samples, seed = payload
    return monte_carlo_counts(tree, probabilities, samples, seed)


def run_simulation_shard(payload: Tuple) -> list:
    """Run one replication shard of a batched traffic simulation.

    ``payload`` is ``(config, seeds)`` — a
    :class:`~repro.elbtunnel.simulation.SimulationConfig` plus the
    per-replication seeds of this shard; returns one integer counter row
    per seed (:data:`~repro.elbtunnel.simulation.COUNTER_FIELDS` order).
    Rows are pure functions of ``(config, seed)``, so the parent can
    concatenate shard results into the full batch regardless of how the
    seed list was partitioned — worker-count independence by
    construction.
    """
    from repro.elbtunnel.batch import replicate_counters
    config, seeds = payload
    return replicate_counters(config, seeds)


def run_uq_chunk(payload: Tuple) -> list:
    """Propagate one row block of a UQ leaf-probability matrix.

    ``payload`` is ``(tree, method, policy, block)`` where ``block`` is
    a ``(rows, n_leaves)`` slice of the full seeded design matrix built
    in the parent.  Each row's quantification is an independent
    element-wise computation, so concatenating per-chunk results is
    bit-identical to evaluating the whole matrix at once — worker and
    shard counts cannot perturb the sampled distribution.
    """
    from repro.compile import compile_tree
    tree, method, policy, block = payload
    evaluator = compile_tree(tree, method, policy)
    return [float(v) for v in evaluator.evaluate_matrix(block)]
