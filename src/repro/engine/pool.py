"""Worker pool: multiprocessing execution with a serial fallback.

The pool runs *payload lists* through module-level worker functions (the
only kind :mod:`multiprocessing` can ship to child processes).  Payloads
carry plain library objects — fault trees, probability dicts, cut set
collections — all of which pickle; parametric probabilities (arbitrary
closures) never cross the process boundary: sweep jobs evaluate them in
the parent and ship the resulting per-point override dicts instead.

When only one worker is configured, only one payload exists, or a pool
cannot be created (restricted environments, missing semaphores), the same
worker functions run serially in-process — results are identical either
way, by construction.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.fta.quantify import hazard_probability


def default_workers() -> int:
    """The machine's CPU count (at least 1)."""
    return os.cpu_count() or 1


def derive_seed(seed: int, shard: int) -> int:
    """Deterministic, well-separated per-shard RNG seed.

    Hash-derived so that neighbouring base seeds cannot collide with
    neighbouring shard indices (as ``seed + shard`` would); independent of
    ``PYTHONHASHSEED``.
    """
    raw = hashlib.sha256(f"mc-shard:{seed}:{shard}".encode()).digest()
    return int.from_bytes(raw[:8], "big")


def chunk_indices(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into ``chunks`` near-equal (start, stop) runs."""
    if count <= 0:
        raise EngineError(f"cannot chunk {count} items")
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class WorkerPool:
    """A fixed-size process pool with graceful serial degradation.

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` means the CPU count.  With
        one worker everything runs in-process (no pickling, no fork).
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    @property
    def is_parallel(self) -> bool:
        """True when payloads may run in separate processes."""
        return self.workers > 1

    def map(self, fn: Callable[[Any], Any],
            payloads: Sequence[Any]) -> List[Any]:
        """Apply a module-level function to every payload, in order.

        Results are returned in payload order regardless of completion
        order.  Worker exceptions propagate to the caller unchanged.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if self.workers == 1 or len(payloads) == 1:
            return [fn(payload) for payload in payloads]
        try:
            pool = multiprocessing.get_context().Pool(
                processes=min(self.workers, len(payloads)))
        except (OSError, ValueError, ImportError):
            # Sandboxes without /dev/shm or fork; same results, serially.
            return [fn(payload) for payload in payloads]
        with pool:
            return pool.map(fn, payloads)


# ----------------------------------------------------------------------
# Worker functions (module-level: must be picklable by reference)
# ----------------------------------------------------------------------
def run_quantify_chunk(payload: Tuple) -> List[Tuple[int, float]]:
    """Quantify one chunk of a parametric sweep.

    ``payload`` is ``(tree, cut_sets, method, policy, chunk)`` — with an
    optional trailing ``compiled`` flag — where ``chunk`` is a list of
    ``(index, overrides)`` pairs; returns ``(index, probability)`` pairs
    so the parent can reassemble the grid in order.  With ``compiled``
    the chunk is evaluated as one :mod:`repro.compile` batch,
    bit-identical to the per-point path.  Each payload ships (and
    unpickles) its own tree copy, so the compile memo cannot hit across
    chunks: compilation happens once per *chunk* — amortized over the
    chunk's points, still far cheaper than the per-point walk.
    """
    tree, cut_sets, method, policy, chunk = payload[:5]
    compiled = payload[5] if len(payload) > 5 else False
    if compiled and chunk:
        from repro.compile import compile_tree, supports_compilation
        if supports_compilation(tree, method):
            evaluator = compile_tree(tree, method, policy,
                                     cut_sets=cut_sets)
            values = evaluator.evaluate(
                [overrides for _index, overrides in chunk])
            return [(index, float(value))
                    for (index, _o), value in zip(chunk, values)]
    return [(index,
             hazard_probability(tree, overrides, method=method,
                                policy=policy, cut_sets=cut_sets))
            for index, overrides in chunk]


def run_monte_carlo_shard(payload: Tuple) -> Tuple[int, int]:
    """Run one Monte Carlo shard; returns ``(occurrences, samples)``.

    ``payload`` is ``(tree, probabilities, samples, seed)``.
    """
    from repro.sim.montecarlo import monte_carlo_counts
    tree, probabilities, samples, seed = payload
    return monte_carlo_counts(tree, probabilities, samples, seed)


def run_simulation_shard(payload: Tuple) -> list:
    """Run one replication shard of a batched traffic simulation.

    ``payload`` is ``(config, seeds)`` — a
    :class:`~repro.elbtunnel.simulation.SimulationConfig` plus the
    per-replication seeds of this shard; returns one integer counter row
    per seed (:data:`~repro.elbtunnel.simulation.COUNTER_FIELDS` order).
    Rows are pure functions of ``(config, seed)``, so the parent can
    concatenate shard results into the full batch regardless of how the
    seed list was partitioned — worker-count independence by
    construction.
    """
    from repro.elbtunnel.batch import replicate_counters
    config, seeds = payload
    return replicate_counters(config, seeds)


def run_uq_chunk(payload: Tuple) -> list:
    """Propagate one row block of a UQ leaf-probability matrix.

    ``payload`` is ``(tree, method, policy, block)`` where ``block`` is
    a ``(rows, n_leaves)`` slice of the full seeded design matrix built
    in the parent.  Each row's quantification is an independent
    element-wise computation, so concatenating per-chunk results is
    bit-identical to evaluating the whole matrix at once — worker and
    shard counts cannot perturb the sampled distribution.
    """
    from repro.compile import compile_tree
    tree, method, policy, block = payload
    evaluator = compile_tree(tree, method, policy)
    return [float(v) for v in evaluator.evaluate_matrix(block)]
