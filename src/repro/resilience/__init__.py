"""Deterministic fault injection and resilience policies.

The paper argues that safety-critical systems must be analyzed under
component failure; this package applies that discipline to the
reproduction's own execution layers.  It has two halves:

* **Injection** — :class:`FaultPlan` registers seeded, deterministic
  faults (crashes, I/O errors, latency, truncated payloads) at named
  sites threaded through :class:`~repro.engine.engine.Engine`,
  :class:`~repro.engine.pool.WorkerPool`, the cache backends and
  :class:`~repro.serve.server.RiskServer`.  A plan is free when absent
  and exactly reproducible when present.
* **Hardening policies** — :class:`RetryPolicy` (capped,
  deterministically jittered exponential backoff) and
  :class:`CircuitBreaker` (closed/open/half-open) shared by the pool,
  the cache degradation chain and the HTTP client.

The chaos suite (``tests/resilience``) drives every site × fault-kind
combination through real jobs and asserts the contract: recover with
results **bit-identical** to the fault-free run, or degrade into a
documented mode with correct results and honest
``degraded``/``retries`` counters — never a silent wrong answer, never
a hang.  See ``docs/resilience.md``.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.plan import (
    KINDS,
    SITES,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    load_fault_plan,
)
from repro.resilience.retry import (
    NO_RETRY,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "KINDS",
    "NO_RETRY",
    "OPEN",
    "SITES",
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "RetryPolicy",
    "call_with_retry",
    "load_fault_plan",
]
