"""Deterministic fault injection: seeded plans over named sites.

The paper's discipline for the Elbtunnel case study is *inject the
fault, prove the outcome*: a safety argument is only as good as the
failure scenarios it was checked against.  This module applies the same
discipline to the reproduction's own infrastructure.  A
:class:`FaultPlan` registers faults at named **injection sites** —
choke points the execution layers call into — and triggers them
*deterministically*: whether call ``n`` at a site fires is a pure
function of ``(seed, site, call index, spec)``, so every chaos test is
exactly reproducible and every recovery can be pinned bit-identical to
the fault-free run.

Sites (see :data:`SITES`):

``pool.shard``
    Around one shard's execution in :meth:`repro.engine.pool.WorkerPool.map`
    (``crash`` here kills the worker *process* — the real failure mode).
``cache.get`` / ``cache.put``
    Inside a cache backend's primary-store operations, underneath the
    degradation chain.
``payload.decode``
    On the payload bytes read back from the sqlite store, before
    decoding (``truncate`` models a torn page / short read).
``serve.stream``
    Around each NDJSON event the HTTP service writes (``io_error`` /
    ``crash`` model a stalled or reset connection, ``truncate`` a
    half-written chunk).

Fault kinds (see :data:`KINDS`):

``crash``
    Process death at ``pool.shard`` when running inside a real worker
    process; everywhere else an :class:`InjectedFault` (the in-process
    stand-in for an abrupt failure).
``io_error``
    An :class:`InjectedFault`, which subclasses :class:`OSError` on
    purpose: every handler that copes with real I/O failures copes with
    injected ones by construction — injection never needs special
    cases in production code.
``latency``
    A plain ``time.sleep`` — the fault that exercises deadlines.
``truncate``
    Byte payloads cut short (only sites that move bytes honour it;
    :meth:`FaultPlan.fire` ignores truncate specs).

A plan with no specs — or no plan at all — costs one ``is None`` check
per site; the benchmark suite pins the fault-free overhead of the
threaded hooks below 5% on the warm Fig. 5 sweep.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ResilienceError

#: Injection sites the execution layers expose, in call-path order.
SITES = ("pool.shard", "cache.get", "cache.put", "payload.decode",
         "serve.stream")

#: Fault kinds a spec may trigger.
KINDS = ("crash", "io_error", "latency", "truncate")

_PLAN_VERSION = 1


class InjectedFault(OSError):
    """A fault raised by a :class:`FaultPlan` (an ``OSError`` subclass,
    so ordinary I/O-failure handling absorbs it with no special case)."""


class InjectedCrash(InjectedFault):
    """The in-process stand-in for a ``crash`` fault outside a real
    worker process (raising it beats killing the test runner)."""


def _hash_fraction(seed: int, site: str, kind: str, index: int) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for rate-based specs.

    Hash-derived like :func:`repro.engine.pool.derive_seed`: independent
    of ``PYTHONHASHSEED``, stable across processes and platforms.
    """
    raw = hashlib.sha256(
        f"fault:{seed}:{site}:{kind}:{index}".encode()).digest()
    return int.from_bytes(raw[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultSpec:
    """One registered fault: where, what, and when it fires.

    Exactly one trigger rule applies, checked in this order:

    ``indices``
        Fire when the call's context index (the shard index at
        ``pool.shard``, the per-site call counter elsewhere) is listed.
        This is the only rule that is deterministic *across processes*
        — worker-side sites must use it, because per-process call
        counters restart in every child.
    ``rate``
        Fire on a seeded Bernoulli draw per call
        (:func:`_hash_fraction`), reproducible for a given plan seed.
    ``after`` / ``times`` (default)
        Skip the first ``after`` calls, then fire ``times`` times
        (``None`` = keep firing forever).
    """

    site: str
    kind: str
    times: Optional[int] = 1
    after: int = 0
    indices: Optional[Tuple[int, ...]] = None
    rate: Optional[float] = None
    #: Sleep duration of a ``latency`` fault.
    latency_s: float = 0.05
    #: Bytes kept by a ``truncate`` fault (from the front).
    keep_bytes: int = 8

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ResilienceError(
                f"unknown injection site {self.site!r}; "
                f"expected one of {SITES}")
        if self.kind not in KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {KINDS}")
        if self.times is not None and self.times < 1:
            raise ResilienceError(
                f"times must be >= 1 or None, got {self.times}")
        if self.after < 0:
            raise ResilienceError(
                f"after must be >= 0, got {self.after}")
        if self.rate is not None and not 0.0 < self.rate <= 1.0:
            raise ResilienceError(
                f"rate must be in (0, 1], got {self.rate}")
        if self.indices is not None:
            object.__setattr__(
                self, "indices",
                tuple(int(i) for i in self.indices))
        if self.latency_s < 0:
            raise ResilienceError(
                f"latency_s must be >= 0, got {self.latency_s}")
        if self.keep_bytes < 0:
            raise ResilienceError(
                f"keep_bytes must be >= 0, got {self.keep_bytes}")

    def triggers(self, seed: int, index: int) -> bool:
        """Whether this spec fires for context ``index`` at its site."""
        if self.indices is not None:
            return index in self.indices
        if self.rate is not None:
            return _hash_fraction(seed, self.site, self.kind,
                                  index) < self.rate
        if index < self.after:
            return False
        return self.times is None or index < self.after + self.times

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the ``--fault-plan`` file format)."""
        spec: Dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.times != 1:
            spec["times"] = self.times
        if self.after:
            spec["after"] = self.after
        if self.indices is not None:
            spec["indices"] = list(self.indices)
        if self.rate is not None:
            spec["rate"] = self.rate
        if self.kind == "latency":
            spec["latency_s"] = self.latency_s
        if self.kind == "truncate":
            spec["keep_bytes"] = self.keep_bytes
        return spec


@dataclass
class _SiteState:
    """Per-site mutable counters (kept out of the frozen specs)."""

    calls: int = 0
    fired: int = 0


class FaultPlan:
    """A seeded registry of deterministic faults over named sites.

    Thread-safe (one lock guards the per-site counters) and picklable —
    plans ride into worker processes inside pool payloads.  Counters are
    per-process: a fault fired inside a worker shows up in the *parent's*
    recovery counters (``WorkerPool.recovered``), not in the parent
    plan's ``fired`` tally.

    Examples
    --------
    >>> plan = FaultPlan(seed=7)
    >>> _ = plan.inject("cache.get", "io_error")          # first get fails
    >>> _ = plan.inject("pool.shard", "crash", indices=(0,))
    """

    def __init__(self, seed: int = 0,
                 specs: Iterable[FaultSpec] = ()):
        self.seed = int(seed)
        self.specs: List[FaultSpec] = list(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ResilienceError(
                    f"specs must be FaultSpec objects, got {spec!r}")
        self._sites: Dict[str, _SiteState] = {}
        self._lock = threading.Lock()

    # -- pickling (locks don't cross process boundaries) ---------------
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------
    def inject(self, site: str, kind: str, **options: Any) -> "FaultPlan":
        """Register one fault spec; returns the plan (for chaining)."""
        self.specs.append(FaultSpec(site=site, kind=kind, **options))
        return self

    # -- observability -------------------------------------------------
    def fired(self, site: Optional[str] = None) -> int:
        """Faults fired in this process, total or for one site."""
        with self._lock:
            if site is not None:
                state = self._sites.get(site)
                return state.fired if state else 0
            return sum(state.fired for state in self._sites.values())

    @property
    def total_fired(self) -> int:
        """Total faults fired in this process."""
        return self.fired()

    def calls(self, site: str) -> int:
        """How many times ``site`` has been exercised in this process."""
        with self._lock:
            state = self._sites.get(site)
            return state.calls if state else 0

    def reset_counters(self) -> None:
        """Zero every per-site counter (specs stay registered)."""
        with self._lock:
            self._sites.clear()

    # -- firing --------------------------------------------------------
    def _advance(self, site: str, index: Optional[int],
                 kinds: Tuple[str, ...]) -> List[FaultSpec]:
        """Count one call at ``site`` and collect the specs that fire."""
        with self._lock:
            state = self._sites.setdefault(site, _SiteState())
            n = state.calls
            state.calls += 1
            context = n if index is None else index
            hits = [spec for spec in self.specs
                    if spec.site == site and spec.kind in kinds
                    and spec.triggers(self.seed, context)]
            state.fired += len(hits)
            return hits

    def fire(self, site: str, index: Optional[int] = None,
             worker: bool = False) -> None:
        """Trigger any due ``crash``/``io_error``/``latency`` fault.

        ``index`` overrides the per-site call counter as the trigger
        context (shard indices at ``pool.shard``).  ``worker=True``
        marks execution inside a real worker process, where ``crash``
        kills the process outright (``os._exit``) — the failure mode
        recovery must survive; elsewhere ``crash`` raises
        :class:`InjectedCrash`.
        """
        hits = self._advance(site, index,
                             ("crash", "io_error", "latency"))
        for spec in hits:
            if spec.kind == "latency":
                time.sleep(spec.latency_s)
        for spec in hits:
            if spec.kind == "crash":
                if worker:
                    import os
                    os._exit(70)
                raise InjectedCrash(
                    f"injected crash at {site} "
                    f"(index {index if index is not None else 'n/a'})")
            if spec.kind == "io_error":
                raise InjectedFault(
                    f"injected io_error at {site} "
                    f"(call {self.calls(site) - 1})")

    def mangle(self, site: str, data: bytes,
               index: Optional[int] = None) -> bytes:
        """Apply any due ``truncate`` fault to a byte payload."""
        hits = self._advance(site, index, ("truncate",))
        for spec in hits:
            data = data[:spec.keep_bytes]
        return data

    def pulse(self, site: str, data: bytes,
              index: Optional[int] = None) -> bytes:
        """One combined injection point for byte-moving sites.

        Counts a *single* call (separate :meth:`mangle` + :meth:`fire`
        calls would double-advance the site counter, putting
        ``indices``-based specs permanently between the two), applies
        any due ``truncate`` fault to ``data``, sleeps any ``latency``
        fault, and raises any ``crash``/``io_error`` fault.
        """
        hits = self._advance(site, index, KINDS)
        for spec in hits:
            if spec.kind == "latency":
                time.sleep(spec.latency_s)
        for spec in hits:
            if spec.kind == "truncate":
                data = data[:spec.keep_bytes]
        for spec in hits:
            if spec.kind == "crash":
                raise InjectedCrash(
                    f"injected crash at {site} "
                    f"(call {self.calls(site) - 1})")
            if spec.kind == "io_error":
                raise InjectedFault(
                    f"injected io_error at {site} "
                    f"(call {self.calls(site) - 1})")
        return data

    # -- JSON round trip (the --fault-plan file format) ----------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe description of the plan (seed + specs)."""
        return {"version": _PLAN_VERSION, "seed": self.seed,
                "faults": [spec.as_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Any) -> "FaultPlan":
        """Inverse of :meth:`as_dict`; raises
        :class:`~repro.errors.ResilienceError` on a malformed plan."""
        if not isinstance(payload, dict) \
                or payload.get("version") != _PLAN_VERSION \
                or not isinstance(payload.get("faults"), list):
            raise ResilienceError(
                f"not a fault plan: {payload!r}")
        plan = cls(seed=int(payload.get("seed", 0)))
        for raw in payload["faults"]:
            if not isinstance(raw, dict):
                raise ResilienceError(
                    f"fault spec must be an object, got {raw!r}")
            spec = dict(raw)
            indices = spec.pop("indices", None)
            if indices is not None:
                spec["indices"] = tuple(indices)
            try:
                plan.inject(spec.pop("site"), spec.pop("kind"), **spec)
            except (KeyError, TypeError) as exc:
                raise ResilienceError(
                    f"malformed fault spec {raw!r}: {exc}") from None
        return plan

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, "
                f"specs={len(self.specs)}, fired={self.total_fired})")


def load_fault_plan(path: str) -> FaultPlan:
    """Read a ``--fault-plan`` JSON file into a :class:`FaultPlan`."""
    import json
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ResilienceError(
            f"cannot read fault plan {path!r}: {exc}") from None
    return FaultPlan.from_dict(payload)
