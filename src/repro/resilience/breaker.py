"""A small circuit breaker for repeatedly failing dependencies.

The classic three states, tracked per protected dependency:

``closed``
    Normal operation; consecutive failures are counted.
``open``
    After ``failure_threshold`` consecutive failures every call is
    refused *without touching the dependency* until ``reset_timeout``
    seconds pass — a client hammering a dead server only slows itself
    (and the server's recovery) down.
``half_open``
    One probe call is allowed through; success closes the breaker,
    failure re-opens it for another timeout window.

Thread-safe; the clock is injectable so tests never sleep.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import ResilienceError

#: Breaker states (exposed for assertions and ``/stats``-style info).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a probing half-open state.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout:
        Seconds the breaker stays open before allowing one probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 1.0,
                 clock: Optional[Callable[[], float]] = None):
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, "
                f"got {failure_threshold}")
        if reset_timeout <= 0:
            raise ResilienceError(
                f"reset_timeout must be > 0, got {reset_timeout}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: Total calls refused while open (observability).
        self.refused = 0
        #: Total times the breaker tripped open.
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half_open`` on timeout."""
        with self._lock:
            return self._advance()

    def _advance(self) -> str:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts refusals)."""
        with self._lock:
            state = self._advance()
            if state == OPEN:
                self.refused += 1
                return False
            return True

    def record_success(self) -> None:
        """Note a successful call: closes the breaker, zeroes failures."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker open."""
        with self._lock:
            self._failures += 1
            half_open_probe_failed = self._state == HALF_OPEN
            if half_open_probe_failed \
                    or self._failures >= self.failure_threshold:
                if self._state != OPEN:
                    self.trips += 1
                self._state = OPEN
                self._opened_at = self._clock()

    def reset(self) -> None:
        """Force the breaker closed (counters preserved)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._failures}/{self.failure_threshold}, "
                f"trips={self.trips})")
