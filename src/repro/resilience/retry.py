"""Deterministic retry policies: capped exponential backoff + jitter.

Every retry loop in the hardened layers (pool shards, cache store
operations, HTTP client reconnects) shares this one policy object, so
retry behaviour is configured — and tested — in one place.  Delays are
*deterministically* jittered: the jitter for attempt ``k`` of key ``K``
is a pure hash of ``(seed, K, k)``, so chaos tests reproduce exact
sleep sequences while concurrent clients still spread their retries
(different keys → different jitter).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.errors import ResilienceError


def _jitter_fraction(seed: int, key: str, attempt: int) -> float:
    """A deterministic uniform draw in ``[0, 1)`` per (key, attempt)."""
    raw = hashlib.sha256(
        f"retry:{seed}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(raw[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped, deterministically jittered backoff.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (1 = no retries).
    base_delay:
        Backoff before the first retry; doubles per further attempt.
    max_delay:
        Cap on any single backoff sleep.
    jitter:
        Fraction of the delay randomized (0.25 → delay × [0.75, 1.25)),
        deterministic per ``(seed, key, attempt)``.
    seed:
        Jitter seed (chaos tests pin it; services leave the default).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, key: str = "") -> float:
        """The backoff before retry ``attempt`` (0-based), jittered."""
        raw = min(self.base_delay * (2.0 ** attempt), self.max_delay)
        if not self.jitter:
            return raw
        spread = _jitter_fraction(self.seed, key, attempt)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * spread)

    @property
    def retries(self) -> int:
        """Retries after the first attempt."""
        return self.max_attempts - 1


#: The no-op policy: one attempt, no sleeping.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


def call_with_retry(fn: Callable[[], Any], policy: RetryPolicy,
                    transient: Tuple[Type[BaseException], ...],
                    key: str = "",
                    on_retry: Optional[Callable[[int, BaseException],
                                                None]] = None) -> Any:
    """Run ``fn`` with bounded retries on ``transient`` exceptions.

    Non-transient exceptions propagate immediately; the last transient
    failure propagates once the budget is exhausted.  ``on_retry`` is
    called with ``(attempt, exception)`` before each backoff sleep —
    the hook the callers use to bump their ``retries`` counters.
    """
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except transient as exc:
            if attempt + 1 >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            pause = policy.delay(attempt, key)
            if pause > 0:
                time.sleep(pause)
    raise AssertionError("unreachable")  # pragma: no cover
