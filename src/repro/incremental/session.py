"""The incremental quantification session.

One :class:`IncrementalSession` holds a fault tree decomposed into
independent modules (:func:`repro.fta.modules.select_modules`) plus the
reduced *spine* — the tree with every chosen module folded into a single
leaf.  Each unit (module or spine) compiles once into a
:class:`~repro.compile.tape.CompiledTape` keyed by its
:func:`~repro.engine.fingerprint.shape_fingerprint`; scalar results are
additionally memoized under a value key combining the shape with the
unit's effective leaf probabilities.  Tapes and values persist through
any :class:`~repro.engine.cache.CacheBackend`, so sessions (and server
processes) share compiled artifacts.

Re-quantification after an edit (:meth:`IncrementalSession.apply`) then
reduces to diffing value keys: a unit whose key is unchanged returns its
memoized value without touching a tape — after a single-rate edit only
the owning module and the spine recompute, which is what makes the warm
path near-constant-time on wide trees.

Composition is exactly :func:`repro.fta.modules.modular_probability`
(same selection, same folding, and the tape arithmetic is bit-identical
to the interpreted exact method), so session results are bit-identical
to ``modular_probability(tree, probs, method="exact")`` — and to plain
monolithic exact quantification whenever the tree has no modules, as in
the shared-leaf corridor model.

When a unit's BDD blows up under the static declaration order, an
optional ``sift_threshold`` triggers dynamic reordering
(:func:`repro.bdd.sift.sift`) before lowering; sifted tapes live under
distinct cache keys since their arithmetic differs bitwise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.bdd.manager import BDDManager
from repro.compile.tape import CompiledTape
from repro.engine.cache import MISS, CacheBackend
from repro.engine.fingerprint import digest, shape_fingerprint
from repro.errors import IncrementalError, QuantificationError
from repro.fta.events import Condition, IntermediateEvent, PrimaryFailure
from repro.fta.modules import fold_modules, select_modules
from repro.fta.quantify import declared_leaf_order, to_bdd
from repro.fta.tree import FaultTree
from repro.incremental.edits import apply_edits, validate_edits

#: Counter names tracked by :class:`IncrementalStats`.
_COUNTERS = ("sessions", "requantifications", "module_compiles",
             "tape_hits", "value_hits", "value_misses", "sift_passes",
             "sift_nodes_before", "sift_nodes_after")


class IncrementalStats:
    """Thread-safe module-cache and sifting counters.

    One instance lives on each :class:`~repro.engine.engine.Engine`
    (surfaced through ``EngineStats.incremental`` and the ``/stats``
    endpoint of :mod:`repro.serve`); standalone sessions create their
    own.  ``value_hits``/``tape_hits`` count artifacts served from the
    cache backend, ``value_misses``/``module_compiles`` count actual
    tape evaluations and BDD compilations.
    """

    __slots__ = ("_lock",) + _COUNTERS

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in _COUNTERS:
            setattr(self, name, 0)

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in _COUNTERS}


@dataclass(frozen=True)
class EditReport:
    """What one :meth:`IncrementalSession.apply` call did.

    ``dirty`` names the units (module roots, plus the tree's top for the
    spine) that had to be re-resolved; ``clean`` the ones served from the
    session memo untouched.  ``value`` is the re-quantified top-event
    probability after the edits.
    """

    edits: Tuple[Dict[str, Any], ...]
    structural: bool
    value: float
    dirty: Tuple[str, ...]
    clean: Tuple[str, ...]
    wall_time_s: float

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the ``repro whatif`` stream format)."""
        return {"edits": [dict(edit) for edit in self.edits],
                "structural": self.structural,
                "value": self.value,
                "dirty": list(self.dirty),
                "clean": list(self.clean),
                "wall_time_s": self.wall_time_s}


class _Unit:
    """One independently compiled piece: a module subtree or the spine."""

    __slots__ = ("name", "tree", "leaf_order", "shape_key", "tape",
                 "last_local", "last_value")

    def __init__(self, name: str, tree: FaultTree, sift_tag: str) -> None:
        self.name = name
        self.tree = tree
        self.leaf_order = declared_leaf_order(tree)
        # The sift setting is part of the key: sifted and unsifted tapes
        # compute the same probability via different arithmetic, and
        # cache hits must be bit-identical to a fresh compile.
        self.shape_key = shape_fingerprint(tree) + sift_tag
        self.tape: Optional[CompiledTape] = None
        self.last_local: Optional[Dict[str, float]] = None
        self.last_value = 0.0


class IncrementalSession:
    """Interactive what-if quantification over one evolving fault tree.

    Parameters
    ----------
    tree:
        The initial fault tree.
    probabilities:
        Optional leaf-probability overrides (as for
        :func:`repro.fta.quantify.hazard_probability`).
    cache:
        Optional :class:`~repro.engine.cache.CacheBackend` holding
        per-module tapes and values across sessions/processes.
    sift_threshold:
        When set, modules whose BDD exceeds this many nodes are sifted
        before lowering (see :mod:`repro.bdd.sift`).
    stats:
        Optional shared :class:`IncrementalStats`; the engine passes its
        own so ``/stats`` aggregates over every session.
    """

    def __init__(self, tree: FaultTree,
                 probabilities: Optional[Dict[str, float]] = None,
                 cache: Optional[CacheBackend] = None,
                 sift_threshold: Optional[int] = None,
                 stats: Optional[IncrementalStats] = None):
        if not isinstance(tree, FaultTree):
            raise IncrementalError(
                f"expected a FaultTree, got {type(tree).__name__}")
        if sift_threshold is not None and sift_threshold < 1:
            raise IncrementalError(
                f"sift_threshold must be a positive int, "
                f"got {sift_threshold!r}")
        self._tree = tree
        self._overrides = dict(probabilities or {})
        self._cache = cache
        self._sift_threshold = sift_threshold
        self._stats = stats if stats is not None else IncrementalStats()
        self._stats.bump(sessions=1)
        self._decompose()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tree(self) -> FaultTree:
        """The current (possibly edited) fault tree."""
        return self._tree

    @property
    def overrides(self) -> Dict[str, float]:
        """The current leaf-probability overrides (a copy)."""
        return dict(self._overrides)

    @property
    def modules(self) -> List[str]:
        """Names of the folded module roots (may be empty)."""
        return [unit.name for unit in self._module_units]

    @property
    def stats(self) -> IncrementalStats:
        return self._stats

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def _decompose(self) -> None:
        sift_tag = (f"|sift={self._sift_threshold}"
                    if self._sift_threshold is not None else "")
        chosen = select_modules(self._tree)
        self._module_units = []
        for module in chosen:
            root_event = self._tree.event(module.root)
            assert isinstance(root_event, IntermediateEvent)
            sub = FaultTree(root_event, name=module.root)
            self._module_units.append(_Unit(module.root, sub, sift_tag))
        if chosen:
            # Folded values are placeholders: the spine's *structure* is
            # all that is compiled; actual module values flow in as leaf
            # probabilities at evaluation time.
            spine_tree = fold_modules(
                self._tree, {module.root: 0.0 for module in chosen})
        else:
            spine_tree = self._tree
        self._spine = _Unit(self._tree.top.name, spine_tree, sift_tag)
        # The leaf-defaults scan is cached per decomposition so the warm
        # edit path only overlays overrides instead of re-walking the
        # tree on every re-quantification.
        defaults: Dict[str, float] = {}
        missing: List[str] = []
        for event in self._tree.iter_events():
            if isinstance(event, (PrimaryFailure, Condition)):
                if event.probability is not None:
                    defaults[event.name] = event.probability
                else:
                    missing.append(event.name)
        self._leaf_defaults = defaults
        self._leaf_missing = tuple(missing)

    def _leaf_values(self) -> Dict[str, float]:
        """Defaults overlaid with overrides; mirrors ``probability_map``."""
        for name in self._leaf_missing:
            if name not in self._overrides:
                raise QuantificationError(
                    f"no probability available for {name!r}; provide "
                    "a default on the event or an override")
        values = dict(self._leaf_defaults)
        values.update(self._overrides)
        return values

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------
    def quantify(self) -> float:
        """(Re-)quantify the current tree exactly."""
        return self._quantify()[0]

    def _quantify(self) -> Tuple[float, List[str], List[str]]:
        values = self._leaf_values()
        dirty: List[str] = []
        clean: List[str] = []
        for unit in self._module_units:
            value, memoized = self._unit_value(unit, values)
            values[unit.name] = value
            (clean if memoized else dirty).append(unit.name)
        top_value, memoized = self._unit_value(self._spine, values)
        (clean if memoized else dirty).append(self._spine.name)
        self._stats.bump(requantifications=1)
        return top_value, dirty, clean

    def _unit_value(self, unit: _Unit,
                    values: Dict[str, float]) -> Tuple[float, bool]:
        try:
            local = {name: values[name] for name in unit.leaf_order}
        except KeyError as exc:  # pragma: no cover - probability_map
            raise IncrementalError(          # guards this upstream
                f"no probability for leaf {exc} of unit "
                f"{unit.name!r}") from None
        # Session memo: the warm-edit hot path compares the valuation
        # directly, so clean units cost one dict equality — no hashing.
        if unit.last_local is not None and unit.last_local == local:
            return unit.last_value, True
        value: Optional[float] = None
        if self._cache is not None:
            # The leaf order is pinned by shape_key, so hashing the
            # values positionally is canonical — and much cheaper than
            # a sorted name->value fingerprint.
            value_key = "incr-val|" + digest(
                unit.shape_key + "|"
                + ",".join(repr(float(v)) for v in local.values()))
            hit = self._cache.get(value_key)
            if hit is not MISS:
                try:
                    value = float(hit)
                except (TypeError, ValueError):
                    value = None
                else:
                    self._stats.bump(value_hits=1)
        if value is None:
            value = self._unit_tape(unit).scalar(local)
            self._stats.bump(value_misses=1)
            if self._cache is not None:
                self._cache.put(value_key, value)
        unit.last_local = local
        unit.last_value = value
        return value, False

    def _unit_tape(self, unit: _Unit) -> CompiledTape:
        if unit.tape is not None:
            return unit.tape
        tape_key = "incr-tape|" + unit.shape_key
        if self._cache is not None:
            hit = self._cache.get(tape_key)
            if hit is not MISS:
                try:
                    unit.tape = CompiledTape.decode(hit)
                except Exception:
                    unit.tape = None    # corrupt payload: recompile
                else:
                    self._stats.bump(tape_hits=1)
                    return unit.tape
        unit.tape = self._compile(unit)
        if self._cache is not None:
            self._cache.put(tape_key, unit.tape.encode())
        return unit.tape

    def _compile(self, unit: _Unit) -> CompiledTape:
        manager = BDDManager()
        root = to_bdd(unit.tree, manager)
        self._stats.bump(module_compiles=1)
        threshold = self._sift_threshold
        if threshold is not None and root.index > 1 \
                and manager.size(root) > threshold:
            result = manager.sift(root)
            self._stats.bump(sift_passes=1,
                             sift_nodes_before=result.size_before,
                             sift_nodes_after=result.size_after)
            manager, root = result.manager, result.root
        return CompiledTape.from_bdd(manager, root, unit.tree.name)

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------
    def apply(self, edits: Iterable[Any]) -> EditReport:
        """Apply edits and re-quantify, recomputing only dirty units.

        Rate edits leave the decomposition and every compiled tape in
        place.  Structural edits re-decompose, but units whose shape key
        survives the edit carry their tape and memo over — an OR→AND flip
        inside one module leaves every other module clean.
        """
        start = perf_counter()
        edits = validate_edits(edits)
        new_tree, new_overrides, structural = apply_edits(
            self._tree, self._overrides, edits)
        self._tree = new_tree
        self._overrides = new_overrides
        if structural:
            previous = {unit.shape_key: unit
                        for unit in self._module_units + [self._spine]}
            self._decompose()
            for unit in self._module_units + [self._spine]:
                kept = previous.get(unit.shape_key)
                if kept is not None:
                    unit.tape = kept.tape
                    unit.last_local = kept.last_local
                    unit.last_value = kept.last_value
        value, dirty, clean = self._quantify()
        normalized = tuple(dict(edit) for edit in edits)
        return EditReport(edits=normalized, structural=structural,
                          value=value, dirty=tuple(dirty),
                          clean=tuple(clean),
                          wall_time_s=perf_counter() - start)

    def describe(self) -> Dict[str, Any]:
        """JSON-safe session summary (tree, modules, sizes)."""
        return {"tree": self._tree.name,
                "modules": self.modules,
                "units": len(self._module_units) + 1,
                "sift_threshold": self._sift_threshold,
                "cached": self._cache is not None}
