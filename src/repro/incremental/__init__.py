"""Incremental re-quantification: edit a tree, recompute only what moved.

The paper's analysis is inherently interactive — Fig. 5/6 exist to answer
"what if this timer or rate changes?" — yet cold quantification rebuilds
the whole BDD per question.  This package makes the edit loop cheap:

* :class:`IncrementalSession` decomposes a tree into independent modules
  (:func:`repro.fta.modules.select_modules`), compiles each once into a
  :class:`~repro.compile.tape.CompiledTape` keyed by structural shape
  fingerprints, persists the artifacts through any
  :class:`~repro.engine.cache.CacheBackend`, and on edit recomputes only
  the dirty modules — near-constant-time re-quantification after a
  single-rate edit,
* :mod:`repro.incremental.edits` defines the JSON edit operations
  (``set_rate`` / ``set_house`` / ``set_gate``) shared by the session,
  the :class:`~repro.engine.jobs.IncrementalJob` spec, and the
  ``repro whatif`` CLI,
* results are bit-identical to
  :func:`repro.fta.modules.modular_probability` with the exact method
  (same decomposition, same arithmetic) — and to plain monolithic exact
  quantification when the tree has no modules.

Quickstart::

    from repro.incremental import IncrementalSession

    session = IncrementalSession(tree, cache=engine_cache)
    baseline = session.quantify()
    report = session.apply([{"op": "set_rate", "event": "OT1",
                             "probability": 2e-4}])
    print(report.value, report.dirty)     # only the touched module
"""

from repro.incremental.edits import (
    EDIT_OPS,
    STRUCTURAL_OPS,
    apply_edits,
    is_structural,
    validate_edit,
    validate_edits,
)
from repro.incremental.session import (
    EditReport,
    IncrementalSession,
    IncrementalStats,
)

__all__ = [
    "IncrementalSession",
    "IncrementalStats",
    "EditReport",
    "EDIT_OPS",
    "STRUCTURAL_OPS",
    "apply_edits",
    "is_structural",
    "validate_edit",
    "validate_edits",
]
