"""Edit operations for what-if sessions.

An edit is a plain JSON-safe dict — the wire format shared by
:class:`repro.incremental.IncrementalSession`, the
:class:`repro.engine.jobs.IncrementalJob` spec, and ``repro whatif``:

``{"op": "set_rate",  "event": name, "probability": p}``
    Change a primary failure's / condition's probability.  Non-structural:
    no tree rebuild, no recompile — the dominant interactive pattern.

``{"op": "set_house", "event": name, "state": bool}``
    Flip a house event.  Structural (the Boolean function changes).

``{"op": "set_gate",  "event": name, "type": gate_type[, "k": int]}``
    Change an intermediate event's gate type (e.g. ``"or"`` → ``"and"``,
    or ``"kofn"`` with ``k``).  Structural.

Structural edits are applied by patching the
:func:`repro.fta.serialize.tree_to_dict` form and rebuilding, so every
invariant the serializer enforces (gate arities, INHIBIT conditions,
name uniqueness) holds for the edited tree too.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import IncrementalError
from repro.fta.events import Condition, PrimaryFailure
from repro.fta.gates import GateType
from repro.fta.serialize import tree_from_dict, tree_to_dict
from repro.fta.tree import FaultTree

#: Recognized edit operations.
EDIT_OPS = ("set_rate", "set_house", "set_gate")

#: Operations that change the tree structure (and hence module shapes).
STRUCTURAL_OPS = ("set_house", "set_gate")

_GATE_TYPES = tuple(gt.value for gt in GateType)


def _require(edit: Dict[str, Any], field: str) -> Any:
    try:
        return edit[field]
    except KeyError:
        raise IncrementalError(
            f"edit {edit!r} is missing the {field!r} field") from None


def validate_edit(edit: Any) -> Dict[str, Any]:
    """Check one edit dict and return its normalized form."""
    if not isinstance(edit, dict):
        raise IncrementalError(
            f"an edit must be a dict, got {type(edit).__name__}")
    op = _require(edit, "op")
    if op not in EDIT_OPS:
        raise IncrementalError(
            f"unknown edit op {op!r}; expected one of {EDIT_OPS}")
    event = _require(edit, "event")
    if not isinstance(event, str) or not event:
        raise IncrementalError(
            f"edit field 'event' must be a non-empty string, got {event!r}")
    normalized: Dict[str, Any] = {"op": op, "event": event}
    if op == "set_rate":
        probability = _require(edit, "probability")
        try:
            probability = float(probability)
        except (TypeError, ValueError):
            raise IncrementalError(
                f"edit probability must be a number, "
                f"got {probability!r}") from None
        if not 0.0 <= probability <= 1.0:
            raise IncrementalError(
                f"edit probability must be in [0, 1], got {probability}")
        normalized["probability"] = probability
    elif op == "set_house":
        state = _require(edit, "state")
        if not isinstance(state, bool):
            raise IncrementalError(
                f"edit field 'state' must be a bool, got {state!r}")
        normalized["state"] = state
    else:  # set_gate
        gate_type = _require(edit, "type")
        if gate_type not in _GATE_TYPES:
            raise IncrementalError(
                f"unknown gate type {gate_type!r}; expected one of "
                f"{_GATE_TYPES}")
        normalized["type"] = gate_type
        k = edit.get("k")
        if k is not None:
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise IncrementalError(
                    f"edit field 'k' must be a positive int, got {k!r}")
            normalized["k"] = k
    return normalized


def validate_edits(edits: Iterable[Any]) -> List[Dict[str, Any]]:
    """Validate a batch of edits (see :func:`validate_edit`)."""
    if isinstance(edits, dict):
        raise IncrementalError("edits must be a list of edit dicts")
    return [validate_edit(edit) for edit in edits]


def is_structural(edit: Dict[str, Any]) -> bool:
    """True when the edit changes the tree structure (not just a rate)."""
    return edit["op"] in STRUCTURAL_OPS


def apply_edits(tree: FaultTree, overrides: Dict[str, float],
                edits: Iterable[Any],
                ) -> Tuple[FaultTree, Dict[str, float], bool]:
    """Apply validated edits, returning ``(tree, overrides, structural)``.

    Rate edits only touch the override map.  Structural edits patch the
    serialized tree dict (one serialization however many edits) and
    rebuild through :func:`tree_from_dict`, so the result is a fully
    validated tree.  The inputs are never mutated.
    """
    overrides = dict(overrides)
    data: Optional[Dict[str, Any]] = None
    structural = False
    for edit in validate_edits(edits):
        name = edit["event"]
        if edit["op"] == "set_rate":
            try:
                target = tree.event(name)
            except Exception as exc:
                raise IncrementalError(
                    f"cannot set rate of unknown event {name!r}") from exc
            if not isinstance(target, (PrimaryFailure, Condition)):
                raise IncrementalError(
                    f"set_rate targets a primary failure or condition; "
                    f"{name!r} is a {type(target).__name__}")
            overrides[name] = edit["probability"]
            continue
        structural = True
        if data is None:
            data = tree_to_dict(tree)
        entry = data["events"].get(name)
        if entry is None:
            raise IncrementalError(
                f"cannot edit unknown event {name!r}")
        if edit["op"] == "set_house":
            if entry.get("kind") != "house":
                raise IncrementalError(
                    f"set_house targets a house event; {name!r} is "
                    f"{entry.get('kind', 'unknown')!r}")
            entry["state"] = edit["state"]
        else:  # set_gate
            gate = entry.get("gate")
            if gate is None:
                raise IncrementalError(
                    f"set_gate targets an intermediate event; {name!r} "
                    f"has no gate")
            gate["type"] = edit["type"]
            if edit["type"] == GateType.KOFN.value:
                if "k" not in edit:
                    raise IncrementalError(
                        f"set_gate to 'kofn' on {name!r} requires 'k'")
                gate["k"] = edit["k"]
            else:
                gate.pop("k", None)
            if edit["type"] == GateType.INHIBIT.value:
                if "condition" not in gate:
                    raise IncrementalError(
                        f"set_gate to 'inhibit' on {name!r} requires the "
                        f"gate to already carry a condition")
            else:
                gate.pop("condition", None)
    if data is not None:
        tree = tree_from_dict(data)
    return tree, overrides, structural
