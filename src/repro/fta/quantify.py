"""Quantitative FTA: hazard probabilities from fault trees.

Implements the paper's standard formula (Eq. 1: hazard probability = sum of
minimal-cut-set products), its constrained refinement (Eq. 2), and three
progressively tighter alternatives for measuring what those approximations
neglect:

* ``rare_event``     — paper Eq. 1/2: sum of (constrained) MCS products.
* ``mcub``           — min-cut upper bound ``1 - prod(1 - P(MCS))``.
* ``inclusion_exclusion`` — exact over the MCS family by inclusion–
  exclusion (exponential in the number of MCS; guarded).
* ``exact``          — exact via a BDD of the whole tree (handles shared
  events, XOR/NOT and conditions correctly).

All methods assume pairwise-independent leaves, as the paper does; the
point of providing the exact ones is to *quantify* the error of Eq. 1
(benchmark A2) rather than to model dependence.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from repro.bdd import BDDManager, Node, probability as bdd_probability
from repro.errors import QuantificationError
from repro.fta.constraints import (
    ConstraintPolicy,
    constrained_cut_set_probability,
)
from repro.fta.cutsets import CutSet, CutSetCollection, mocus
from repro.fta.events import (
    Condition,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree
from repro.bdd.manager import FALSE, TRUE

_METHODS = ("rare_event", "mcub", "inclusion_exclusion", "exact")
_IE_LIMIT = 22  # inclusion-exclusion is O(2^n) in the MCS count


def probability_map(tree: FaultTree,
                    overrides: Optional[Dict[str, float]] = None
                    ) -> Dict[str, float]:
    """Collect leaf probabilities: event defaults overlaid with overrides.

    Primary failures and conditions may carry default probabilities on the
    event objects; ``overrides`` (e.g. parameterized probabilities
    evaluated at a concrete parameter vector) take precedence.  Leaves
    with neither raise :class:`QuantificationError`.
    """
    overrides = overrides or {}
    result: Dict[str, float] = {}
    for event in tree.iter_events():
        if isinstance(event, (PrimaryFailure, Condition)):
            if event.name in overrides:
                result[event.name] = overrides[event.name]
            elif event.probability is not None:
                result[event.name] = event.probability
            else:
                raise QuantificationError(
                    f"no probability available for {event.name!r}; provide "
                    "a default on the event or an override")
    for name, value in overrides.items():
        result.setdefault(name, value)
    return result


def cut_set_probabilities(
        cut_sets: Iterable[CutSet], probabilities: Dict[str, float],
        policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT
        ) -> Dict[CutSet, float]:
    """Map each cut set to its constrained probability (paper Eq. 2)."""
    return {cs: constrained_cut_set_probability(cs, probabilities, policy)
            for cs in cut_sets}


def hazard_probability(
        tree: FaultTree,
        probabilities: Optional[Dict[str, float]] = None,
        method: str = "rare_event",
        policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
        cut_sets: Optional[CutSetCollection] = None) -> float:
    """Compute the probability of a tree's hazard.

    Parameters
    ----------
    tree:
        The fault tree.
    probabilities:
        Leaf probability overrides (merged over event defaults).
    method:
        One of ``rare_event`` (paper Eq. 1/2), ``mcub``,
        ``inclusion_exclusion``, ``exact``.
    policy:
        Constraint-probability policy for the cut-set-based methods.
    cut_sets:
        Pre-computed cut sets (skips MOCUS); ignored by ``exact``.
    """
    if method not in _METHODS:
        raise QuantificationError(
            f"unknown method {method!r}; expected one of {_METHODS}")
    probs = probability_map(tree, probabilities)
    if method == "exact":
        manager = BDDManager()
        root = to_bdd(tree, manager)
        return bdd_probability(manager, root, probs)
    if cut_sets is None:
        cut_sets = mocus(tree)
    if method == "rare_event":
        total = sum(
            constrained_cut_set_probability(cs, probs, policy)
            for cs in cut_sets)
        return min(1.0, total)
    if method == "mcub":
        product = 1.0
        for cs in cut_sets:
            product *= 1.0 - constrained_cut_set_probability(
                cs, probs, policy)
        return 1.0 - product
    # inclusion_exclusion: exact over the union of cut set occurrences,
    # treating conditions as independent literals alongside failures.
    if len(cut_sets) > _IE_LIMIT:
        raise QuantificationError(
            f"inclusion-exclusion over {len(cut_sets)} cut sets would need "
            f"2^{len(cut_sets)} terms; use method='exact' instead")
    literals = [frozenset(cs.failures | cs.conditions) for cs in cut_sets]
    total = 0.0
    for r in range(1, len(literals) + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for combo in itertools.combinations(literals, r):
            union: frozenset = frozenset().union(*combo)
            term = 1.0
            for name in union:
                if name not in probs:
                    raise QuantificationError(
                        f"no probability given for {name!r}")
                term *= probs[name]
            total += sign * term
    return max(0.0, min(1.0, total))


def approximation_error(tree: FaultTree,
                        probabilities: Optional[Dict[str, float]] = None,
                        policy: ConstraintPolicy =
                        ConstraintPolicy.INDEPENDENT) -> Dict[str, float]:
    """Compare Eq. 1's rare-event value against the exact BDD value.

    Returns a dict with ``rare_event``, ``exact``, ``absolute_error`` and
    ``relative_error`` — the quantity the paper waves off as "in practice
    no problem as failure probabilities are very small".
    """
    rare = hazard_probability(tree, probabilities, "rare_event",
                              policy=policy)
    exact = hazard_probability(tree, probabilities, "exact")
    abs_err = abs(rare - exact)
    rel_err = abs_err / exact if exact > 0.0 else 0.0
    return {"rare_event": rare, "exact": exact,
            "absolute_error": abs_err, "relative_error": rel_err}


def _order_declaration(tree: FaultTree) -> List[str]:
    """Leaves in first-visit depth-first (pre-order) declaration order —
    the default, and exactly the ordering of the linked-node kernel this
    replaced: each subtree's leaves stay adjacent."""
    return [event.name for event in tree.iter_events()
            if isinstance(event, (PrimaryFailure, Condition))]


def _order_topological(tree: FaultTree) -> List[str]:
    """Leaves in breadth-first level order (shallowest first).

    Leaves close to the hazard come first in the variable order, level by
    level — for wide, balanced trees this interleaves sibling subtrees,
    which tends to beat declaration order when gates at the same depth
    share events."""
    names: List[str] = []
    seen = set()
    queue = [tree.top]
    head = 0
    while head < len(queue):
        event = queue[head]
        head += 1
        key = id(event)
        if key in seen:
            continue
        seen.add(key)
        if isinstance(event, (PrimaryFailure, Condition)):
            names.append(event.name)
            continue
        if not isinstance(event, IntermediateEvent):
            continue
        gate = event.gate
        queue.extend(gate.inputs)
        if gate.gate_type is GateType.INHIBIT:
            queue.append(gate.condition)
    return names


def _order_weighted(tree: FaultTree) -> List[str]:
    """Leaves by descending *weighted fan-in*: every distinct gate that
    references a leaf contributes ``1 / (depth + 1)`` at the gate's
    shallowest depth, so shallow and widely shared leaves come first
    (closest to the root) — the classic heuristic for trees with
    repeated events; ties break on first-visit order.

    Each gate is visited exactly once (breadth-first, so its recorded
    depth is minimal), keeping the pass linear even on DAG-shaped trees
    with heavily shared subtrees."""
    weights: Dict[str, float] = {}
    first_visit: Dict[str, int] = {}
    seen = set()
    queue = [(tree.top, 0)]
    head = 0
    while head < len(queue):
        event, depth = queue[head]
        head += 1
        if isinstance(event, (PrimaryFailure, Condition)):
            # Leaves are enqueued once per referencing gate; each such
            # edge adds its contribution here.
            weights[event.name] = weights.get(event.name, 0.0) \
                + 1.0 / (depth + 1)
            first_visit.setdefault(event.name, len(first_visit))
            continue
        if not isinstance(event, IntermediateEvent) or id(event) in seen:
            continue
        seen.add(id(event))
        gate = event.gate
        children = list(gate.inputs)
        if gate.gate_type is GateType.INHIBIT:
            children.append(gate.condition)
        for child in children:
            queue.append((child, depth + 1))
    return sorted(weights,
                  key=lambda name: (-weights[name], first_visit[name]))


_ORDER_HEURISTICS = {
    "declaration": _order_declaration,
    "topological": _order_topological,
    "weighted": _order_weighted,
}

#: Static variable-ordering heuristics accepted by :func:`to_bdd`.
VARIABLE_ORDERS = tuple(_ORDER_HEURISTICS)


def declared_leaf_order(tree: FaultTree) -> List[str]:
    """Leaf names in the exact order :func:`to_bdd` registers variables.

    Mirrors the default (``"declaration"``) build: leaves register at
    their first depth-first visit over ``gate.inputs``, while an INHIBIT
    condition registers when its gate *completes* — not at pre-order
    visit, which is why :meth:`FaultTree.iter_events` cannot be used
    here.  :mod:`repro.incremental` keys compiled-tape artifacts on this
    order, since two structurally equal trees only share a tape when
    their BDD variable orders agree.
    """
    order: List[str] = []
    seen: set = set()

    def register(name: str) -> None:
        if name not in seen:
            seen.add(name)
            order.append(name)

    done: set = set()
    stack = [(tree.top, False)]
    while stack:
        event, ready = stack.pop()
        key = id(event)
        if key in done:
            continue
        if isinstance(event, (PrimaryFailure, Condition)):
            register(event.name)
            done.add(key)
        elif isinstance(event, HouseEvent):
            done.add(key)
        elif isinstance(event, IntermediateEvent):
            if ready:
                if event.gate.gate_type is GateType.INHIBIT:
                    register(event.gate.condition.name)
                done.add(key)
            else:
                stack.append((event, True))
                for child in reversed(event.gate.inputs):
                    if id(child) not in done:
                        stack.append((child, False))
        else:
            raise QuantificationError(
                f"cannot translate event of type {type(event).__name__}")
    return order


def to_bdd(tree: FaultTree, manager: BDDManager,
           order: str = "declaration") -> Node:
    """Translate a fault tree into a BDD over its leaf events.

    Primary failures and INHIBIT conditions become BDD variables; house
    events become constants.  All gate types, including the non-coherent
    XOR/NOT, are supported, and the build is iterative — arbitrarily deep
    trees never hit Python's recursion limit.

    Parameters
    ----------
    tree:
        The fault tree to translate.
    manager:
        Target manager; variables are registered into its order.
    order:
        Static variable-ordering heuristic — ordering dominates BDD
        size.  One of ``"declaration"`` (first-visit depth-first
        pre-order, the default and historical behaviour: each subtree's
        leaves stay adjacent), ``"topological"`` (breadth-first level
        order: shallow leaves first, interleaving sibling subtrees) or
        ``"weighted"`` (descending weighted fan-in: widely shared and
        shallow leaves first, good for trees with many repeated
        events).  Heuristics only matter on a fresh manager —
        already-registered variables keep their positions.
    """
    if order != "declaration":
        try:
            leaf_order = _ORDER_HEURISTICS[order]
        except KeyError:
            raise QuantificationError(
                f"unknown variable order {order!r}; expected one of "
                f"{VARIABLE_ORDERS}") from None
        for name in leaf_order(tree):
            manager.add_var(name)
    # Declaration order needs no pre-pass: the build below registers
    # every leaf (and INHIBIT condition) at its first visit, which *is*
    # the declaration order.

    memo: Dict[int, Node] = {}

    def build_gate(event: IntermediateEvent) -> Node:
        gate = event.gate
        children = [memo[id(child)] for child in gate.inputs]
        gt = gate.gate_type
        if gt is GateType.AND:
            return manager.and_all(children)
        if gt is GateType.OR:
            return manager.or_all(children)
        if gt is GateType.KOFN:
            return manager.at_least(gate.k, children)
        if gt is GateType.XOR:
            result = children[0]
            for child in children[1:]:
                result = manager.apply_xor(result, child)
            return result
        if gt is GateType.NOT:
            return manager.negate(children[0])
        if gt is GateType.INHIBIT:
            return manager.apply_and(children[0],
                                     manager.var(gate.condition.name))
        raise QuantificationError(f"unknown gate type {gt!r}")

    stack = [(tree.top, False)]
    while stack:
        event, ready = stack.pop()
        key = id(event)
        if key in memo:
            continue
        if isinstance(event, (PrimaryFailure, Condition)):
            memo[key] = manager.var(event.name)
        elif isinstance(event, HouseEvent):
            memo[key] = TRUE if event.state else FALSE
        elif isinstance(event, IntermediateEvent):
            if ready:
                memo[key] = build_gate(event)
            else:
                stack.append((event, True))
                for child in reversed(event.gate.inputs):
                    if id(child) not in memo:
                        stack.append((child, False))
        else:
            raise QuantificationError(
                f"cannot translate event of type {type(event).__name__}")
    return memo[id(tree.top)]
