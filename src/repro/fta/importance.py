"""Importance measures: which primary failure matters most.

Standard companions of quantitative FTA [Vesely et al.], computed here on
the *exact* BDD probabilities so they remain meaningful even when failure
probabilities are not tiny:

* **Birnbaum**            ``I_B  = P(H | e=1) - P(H | e=0)``
* **Criticality**         ``I_C  = I_B * p_e / P(H)``
* **Fussell–Vesely**      ``I_FV = 1 - P(H | e=0) / P(H)``
* **Risk Achievement Worth** ``RAW = P(H | e=1) / P(H)``
* **Risk Reduction Worth**   ``RRW = P(H) / P(H | e=0)``

These rank exactly the kind of finding the paper reports qualitatively
("formal FTA showed that a false detection of ODfinal is a critical single
point of failure").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bdd import BDDManager, probability as bdd_probability
from repro.bdd.prob import conditional_probability
from repro.errors import QuantificationError
from repro.fta.quantify import probability_map, to_bdd
from repro.fta.tree import FaultTree


@dataclass(frozen=True)
class ImportanceResult:
    """Importance measures of a single primary failure or condition."""

    event: str
    probability: float
    birnbaum: float
    criticality: float
    fussell_vesely: float
    raw: float
    rrw: float


def importance_measures(
        tree: FaultTree,
        probabilities: Optional[Dict[str, float]] = None,
        events: Optional[List[str]] = None) -> List[ImportanceResult]:
    """Compute importance measures for leaves of a fault tree.

    Parameters
    ----------
    tree:
        The fault tree (coherent or not; everything goes through the BDD).
    probabilities:
        Leaf probability overrides.
    events:
        Restrict to these leaf names; defaults to every leaf in the BDD's
        support.

    Returns
    -------
    list of :class:`ImportanceResult`, sorted by descending Birnbaum.
    """
    probs = probability_map(tree, probabilities)
    manager = BDDManager()
    root = to_bdd(tree, manager)
    base = bdd_probability(manager, root, probs)
    if base <= 0.0:
        raise QuantificationError(
            "hazard probability is zero; importance measures undefined")
    support = manager.support(root)
    names = events if events is not None else sorted(support)
    results: List[ImportanceResult] = []
    for name in names:
        if name not in support:
            # The event cannot influence the hazard at all.
            results.append(ImportanceResult(
                event=name, probability=probs.get(name, 0.0), birnbaum=0.0,
                criticality=0.0, fussell_vesely=0.0, raw=1.0, rrw=1.0))
            continue
        p_event = probs[name]
        # Restrict-and-evaluate on the shared arena: both cofactors reuse
        # the manager's interned nodes, and the arithmetic is exactly the
        # bottom-up pass of the unrestricted evaluation.
        with_e = conditional_probability(manager, root, probs, name, True)
        without_e = conditional_probability(
            manager, root, probs, name, False)
        birnbaum = with_e - without_e
        criticality = birnbaum * p_event / base
        fussell_vesely = 1.0 - without_e / base
        raw = with_e / base
        rrw = base / without_e if without_e > 0.0 else math.inf
        results.append(ImportanceResult(
            event=name, probability=p_event, birnbaum=birnbaum,
            criticality=criticality, fussell_vesely=fussell_vesely,
            raw=raw, rrw=rrw))
    results.sort(key=lambda r: r.birnbaum, reverse=True)
    return results
