"""Fault tree analysis (FTA) substrate.

Implements the paper's Sect. II in full: events and gates (AND, OR,
INHIBIT, plus the standard K-of-N/XOR/NOT extensions), validated trees,
minimal cut sets via MOCUS, quantification by the standard rare-event
formula (Eq. 1) and its constrained refinement (Eq. 2), exact alternatives
through :mod:`repro.bdd`, importance measures, and a beta-factor
common-cause transformation for the dependence cases the paper flags as
out of FTA's scope.
"""

from repro.fta.allocation import AllocationResult, allocate_improvements
from repro.fta.ccf import apply_beta_factor
from repro.fta.constraints import (
    ConstraintPolicy,
    constrained_cut_set_probability,
    constraint_probability,
)
from repro.fta.dependency import (
    ImplicationSet,
    dependent_constraint_probability,
    reduce_conditions,
)
from repro.fta.cutsets import CutSet, CutSetCollection, minimize, mocus
from repro.fta.events import (
    Condition,
    Event,
    Hazard,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.eventtrees import (
    BranchPoint,
    EventTree,
    EventTreeResult,
)
from repro.fta.gates import (
    Gate,
    GateType,
    and_gate,
    inhibit_gate,
    kofn_gate,
    not_gate,
    or_gate,
    xor_gate,
)
from repro.fta.importance import ImportanceResult, importance_measures
from repro.fta.quantify import (
    VARIABLE_ORDERS,
    approximation_error,
    cut_set_probabilities,
    hazard_probability,
    probability_map,
    to_bdd,
)
from repro.fta.modules import (
    Module,
    find_modules,
    fold_modules,
    modular_probability,
    select_modules,
)
from repro.fta.phases import (
    MissionPhase,
    MissionResult,
    PhaseResult,
    evaluate_mission,
    scale_exposure_probabilities,
)
from repro.fta.reporting import AnalysisReport, RankedCutSet, analyze
from repro.fta.serialize import (
    tree_from_dict,
    tree_from_galileo,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_galileo,
    tree_to_json,
)
from repro.fta.temporal import (
    TemporalCurve,
    evaluate_over_time,
    time_to_probability,
)
from repro.fta.tree import FaultTree

__all__ = [
    "Event",
    "PrimaryFailure",
    "Condition",
    "HouseEvent",
    "IntermediateEvent",
    "Hazard",
    "Gate",
    "GateType",
    "and_gate",
    "or_gate",
    "kofn_gate",
    "xor_gate",
    "not_gate",
    "inhibit_gate",
    "FaultTree",
    "CutSet",
    "CutSetCollection",
    "mocus",
    "minimize",
    "ConstraintPolicy",
    "constraint_probability",
    "constrained_cut_set_probability",
    "hazard_probability",
    "probability_map",
    "VARIABLE_ORDERS",
    "cut_set_probabilities",
    "approximation_error",
    "to_bdd",
    "importance_measures",
    "ImportanceResult",
    "apply_beta_factor",
    "AllocationResult",
    "allocate_improvements",
    "BranchPoint",
    "EventTree",
    "EventTreeResult",
    "ImplicationSet",
    "reduce_conditions",
    "dependent_constraint_probability",
    "analyze",
    "AnalysisReport",
    "RankedCutSet",
    "Module",
    "find_modules",
    "fold_modules",
    "modular_probability",
    "select_modules",
    "MissionPhase",
    "MissionResult",
    "PhaseResult",
    "evaluate_mission",
    "scale_exposure_probabilities",
    "TemporalCurve",
    "evaluate_over_time",
    "time_to_probability",
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_json",
    "tree_from_json",
    "tree_to_galileo",
    "tree_from_galileo",
    "tree_to_dot",
]
