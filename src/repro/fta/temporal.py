"""Time-dependent fault tree analysis.

Standard quantitative FTA evaluates one snapshot; real components
accumulate failure probability over their exposure.  This module binds
:mod:`repro.stats.reliability` models to fault tree leaves and evaluates
the hazard probability as a function of mission time:

* ``q_i(t)`` — each leaf's unavailability at time ``t`` from its
  reliability model (constant rate, Weibull wear-out, per-demand, ...),
* ``P(H)(t)`` — the hazard probability curve over a mission,
* mean time to hazard (MTTH) — estimated from the curve by numerically
  integrating the survival function ``1 - P(H)(t)`` until the horizon.

This is the temporal side of the paper's parameterized probabilities:
the free parameter is simply *time*, and the same machinery (Eq. 3/4)
applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import QuantificationError
from repro.fta.quantify import hazard_probability, probability_map
from repro.fta.tree import FaultTree
from repro.stats.reliability import ReliabilityModel


@dataclass(frozen=True)
class TemporalCurve:
    """A sampled hazard-probability-over-time curve."""

    hazard: str
    points: Tuple[Tuple[float, float], ...]   # (time, P(H)(time))

    @property
    def times(self) -> Tuple[float, ...]:
        return tuple(t for t, _p in self.points)

    @property
    def probabilities(self) -> Tuple[float, ...]:
        return tuple(p for _t, p in self.points)

    def at(self, time: float) -> float:
        """Linearly interpolate the curve at ``time``."""
        points = self.points
        if time <= points[0][0]:
            return points[0][1]
        if time >= points[-1][0]:
            return points[-1][1]
        for (t0, p0), (t1, p1) in zip(points, points[1:]):
            if t0 <= time <= t1:
                if t1 == t0:
                    return p0
                frac = (time - t0) / (t1 - t0)
                return p0 + frac * (p1 - p0)
        raise QuantificationError(f"time {time} not covered")  # pragma: no cover

    def mean_time_to_hazard(self) -> float:
        """Trapezoidal integral of ``1 - P(H)(t)`` up to the horizon.

        A lower bound on the true MTTH when the curve has not saturated
        at the horizon; exact in the limit of a long mission.
        """
        total = 0.0
        for (t0, p0), (t1, p1) in zip(self.points, self.points[1:]):
            total += 0.5 * ((1.0 - p0) + (1.0 - p1)) * (t1 - t0)
        return total


def evaluate_over_time(
        tree: FaultTree,
        leaf_models: Dict[str, ReliabilityModel],
        horizon: float,
        points: int = 50,
        static_probabilities: Optional[Dict[str, float]] = None,
        method: str = "exact") -> TemporalCurve:
    """Evaluate ``P(H)(t)`` over ``[0, horizon]``.

    Parameters
    ----------
    tree:
        The fault tree.
    leaf_models:
        Maps leaf names to reliability models supplying ``q_i(t)``.
        Every name must exist in the tree.
    horizon:
        Mission length (same time unit as the models).
    points:
        Number of evenly spaced sample times (including 0 and horizon).
    static_probabilities:
        Probabilities for leaves *not* covered by a model (conditions,
        per-demand leaves); merged over event defaults.
    method:
        Quantification method per sample (default exact BDD).
    """
    if horizon <= 0.0:
        raise QuantificationError(f"horizon must be > 0, got {horizon}")
    if points < 2:
        raise QuantificationError(f"need points >= 2, got {points}")
    for name in leaf_models:
        if name not in tree:
            raise QuantificationError(
                f"leaf model for unknown event {name!r}")

    # Validate static coverage once at t=0.
    base = dict(static_probabilities or {})
    for name in leaf_models:
        base[name] = 0.0
    probability_map(tree, base)

    step = horizon / (points - 1)
    curve: List[Tuple[float, float]] = []
    for i in range(points):
        t = i * step
        overrides = dict(static_probabilities or {})
        for name, model in leaf_models.items():
            overrides[name] = model(t)
        curve.append((t, hazard_probability(tree, overrides,
                                            method=method)))
    return TemporalCurve(hazard=tree.top.name, points=tuple(curve))


def time_to_probability(curve: TemporalCurve, target: float) -> float:
    """First time at which the hazard probability reaches ``target``.

    Linear interpolation between samples; returns ``inf`` when the curve
    never reaches the target within its horizon.
    """
    if not 0.0 <= target <= 1.0:
        raise QuantificationError(
            f"target probability must be in [0, 1], got {target}")
    points = curve.points
    if points[0][1] >= target:
        return points[0][0]
    for (t0, p0), (t1, p1) in zip(points, points[1:]):
        if p1 >= target:
            if p1 == p0:
                return t1
            frac = (target - p0) / (p1 - p0)
            return t0 + frac * (t1 - t0)
    return float("inf")
