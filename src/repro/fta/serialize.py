"""Fault tree serialization: JSON round-trip, Galileo text, Graphviz DOT.

The paper names "intuitive tool support" as a key feature for industrial
adoption (Sect. V); interchange formats are the minimum viable version of
that.  The JSON schema is self-describing and round-trips losslessly; the
Galileo-style text format is write-only (a common exchange syntax for
static fault trees); DOT export renders trees with the paper's Fig. 1
shapes (circles for primary failures, houses for house events, ovals for
INHIBIT conditions).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import SerializationError
from repro.fta.events import (
    Condition,
    Event,
    Hazard,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import Gate, GateType
from repro.fta.tree import FaultTree

_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def tree_to_dict(tree: FaultTree) -> Dict:
    """Serialize a fault tree into a JSON-ready dictionary."""
    events: Dict[str, Dict] = {}
    for event in tree.iter_events():
        entry: Dict = {"description": event.description}
        if isinstance(event, PrimaryFailure):
            entry["kind"] = "primary"
            entry["probability"] = event.probability
        elif isinstance(event, Condition):
            entry["kind"] = "condition"
            entry["probability"] = event.probability
        elif isinstance(event, HouseEvent):
            entry["kind"] = "house"
            entry["state"] = event.state
        elif isinstance(event, IntermediateEvent):
            entry["kind"] = "hazard" if isinstance(event, Hazard) \
                else "intermediate"
            gate = event.gate
            entry["gate"] = {
                "type": gate.gate_type.value,
                "inputs": [child.name for child in gate.inputs],
            }
            if gate.k is not None:
                entry["gate"]["k"] = gate.k
            if gate.condition is not None:
                entry["gate"]["condition"] = gate.condition.name
        else:
            raise SerializationError(
                f"cannot serialize event type {type(event).__name__}")
        events[event.name] = entry
    return {"schema": _SCHEMA_VERSION, "name": tree.name,
            "top": tree.top.name, "events": events}


def tree_from_dict(data: Dict) -> FaultTree:
    """Rebuild a fault tree from :func:`tree_to_dict` output."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {data.get('schema')!r}")
    try:
        entries = data["events"]
        top_name = data["top"]
    except KeyError as exc:
        raise SerializationError(f"missing key {exc}") from None

    built: Dict[str, Event] = {}

    def build(name: str) -> Event:
        if name in built:
            return built[name]
        try:
            entry = entries[name]
        except KeyError:
            raise SerializationError(
                f"event {name!r} referenced but not defined") from None
        kind = entry.get("kind")
        description = entry.get("description", "")
        if kind == "primary":
            event: Event = PrimaryFailure(
                name, entry.get("probability"), description)
        elif kind == "condition":
            event = Condition(name, entry.get("probability"), description)
        elif kind == "house":
            event = HouseEvent(name, entry["state"], description)
        elif kind in ("intermediate", "hazard"):
            gate_data = entry["gate"]
            gate_type = GateType(gate_data["type"])
            inputs = [build(child) for child in gate_data["inputs"]]
            cond = None
            if "condition" in gate_data:
                cond_event = build(gate_data["condition"])
                if not isinstance(cond_event, Condition):
                    raise SerializationError(
                        f"{gate_data['condition']!r} is not a condition")
                cond = cond_event
            gate = Gate(gate_type, inputs, k=gate_data.get("k"),
                        condition=cond)
            cls = Hazard if kind == "hazard" else IntermediateEvent
            event = cls(name, gate, description)
        else:
            raise SerializationError(f"unknown event kind {kind!r}")
        built[name] = event
        return event

    top = build(top_name)
    if not isinstance(top, IntermediateEvent):
        raise SerializationError(
            f"top event {top_name!r} is not an intermediate event")
    return FaultTree(top, name=data.get("name"))


def tree_to_json(tree: FaultTree, indent: int = 2) -> str:
    """Serialize a fault tree to a JSON string."""
    return json.dumps(tree_to_dict(tree), indent=indent, sort_keys=True)


def tree_from_json(text: str) -> FaultTree:
    """Parse a fault tree from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from None
    return tree_from_dict(data)


# ----------------------------------------------------------------------
# Galileo-style text
# ----------------------------------------------------------------------
def tree_to_galileo(tree: FaultTree) -> str:
    """Render the tree in a Galileo-style static fault tree syntax.

    INHIBIT gates are rendered as 2-input ANDs over the cause and the
    condition (the standard encoding); house events as probability 0/1
    basic events.
    """
    lines: List[str] = [f"toplevel \"{tree.top.name}\";"]
    for event in tree.iter_events():
        if isinstance(event, IntermediateEvent):
            gate = event.gate
            names = [f"\"{child.name}\"" for child in gate.inputs]
            gt = gate.gate_type
            if gt is GateType.AND:
                op = "and"
            elif gt is GateType.OR:
                op = "or"
            elif gt is GateType.KOFN:
                op = f"{gate.k}of{len(gate.inputs)}"
            elif gt is GateType.XOR:
                op = "xor"
            elif gt is GateType.NOT:
                op = "not"
            elif gt is GateType.INHIBIT:
                op = "and"
                names.append(f"\"{gate.condition.name}\"")
            else:  # pragma: no cover - exhaustive above
                raise SerializationError(f"unknown gate type {gt!r}")
            lines.append(f"\"{event.name}\" {op} {' '.join(names)};")
    for event in tree.iter_events():
        if isinstance(event, (PrimaryFailure, Condition)):
            prob = event.probability
            prob_text = f" prob={prob}" if prob is not None else ""
            lines.append(f"\"{event.name}\"{prob_text};")
        elif isinstance(event, HouseEvent):
            lines.append(f"\"{event.name}\" prob={1.0 if event.state else 0.0};")
    return "\n".join(lines) + "\n"


def tree_from_galileo(text: str) -> FaultTree:
    """Parse a Galileo-style static fault tree.

    Accepts the subset :func:`tree_to_galileo` emits: a ``toplevel``
    line, gate lines (``and``, ``or``, ``xor``, ``not``, ``KofN``), and
    basic-event lines with optional ``prob=`` annotations.  The
    INHIBIT distinction is not part of Galileo, so round-trips through
    this format encode INHIBIT gates as ANDs with the condition as a
    basic event (probabilities are preserved; constraint *semantics*
    are not — use the JSON format for lossless storage).
    """
    import re

    toplevel: Optional[str] = None
    gate_lines: Dict[str, Tuple[str, List[str]]] = {}
    basic_probs: Dict[str, Optional[float]] = {}

    statements = [s.strip() for s in text.split(";")]
    for statement in statements:
        if not statement:
            continue
        if statement.startswith("toplevel"):
            names = re.findall(r'"([^"]+)"', statement)
            if len(names) != 1:
                raise SerializationError(
                    f"malformed toplevel statement: {statement!r}")
            toplevel = names[0]
            continue
        names = re.findall(r'"([^"]+)"', statement)
        if not names:
            raise SerializationError(
                f"cannot parse statement: {statement!r}")
        head = names[0]
        remainder = re.sub(r'"[^"]+"', " ", statement).split()
        if remainder and remainder[0] in ("and", "or", "xor", "not") \
                or (remainder and re.fullmatch(r"\d+of\d+",
                                               remainder[0])):
            op = remainder[0]
            if len(names) < 2:
                raise SerializationError(
                    f"gate {head!r} has no inputs: {statement!r}")
            gate_lines[head] = (op, names[1:])
        else:
            prob_match = re.search(r"prob\s*=\s*([0-9.eE+-]+)",
                                   statement)
            basic_probs[head] = float(prob_match.group(1)) \
                if prob_match else None

    if toplevel is None:
        raise SerializationError("missing toplevel statement")

    built: Dict[str, Event] = {}

    def build(name: str) -> Event:
        if name in built:
            return built[name]
        if name in gate_lines:
            op, inputs = gate_lines[name]
            children = [build(child) for child in inputs]
            kofn_match = re.fullmatch(r"(\d+)of(\d+)", op)
            if kofn_match:
                k = int(kofn_match.group(1))
                gate = Gate(GateType.KOFN, children, k=k)
            elif op == "and":
                gate = Gate(GateType.AND, children)
            elif op == "or":
                gate = Gate(GateType.OR, children)
            elif op == "xor":
                gate = Gate(GateType.XOR, children)
            elif op == "not":
                gate = Gate(GateType.NOT, children)
            else:  # pragma: no cover - filtered during scanning
                raise SerializationError(f"unknown gate op {op!r}")
            cls = Hazard if name == toplevel else IntermediateEvent
            event: Event = cls(name, gate)
        elif name in basic_probs:
            event = PrimaryFailure(name, basic_probs[name])
        else:
            raise SerializationError(
                f"event {name!r} referenced but never defined")
        built[name] = event
        return event

    top = build(toplevel)
    if not isinstance(top, IntermediateEvent):
        raise SerializationError(
            f"toplevel {toplevel!r} is not a gate")
    return FaultTree(top)


# ----------------------------------------------------------------------
# Graphviz DOT
# ----------------------------------------------------------------------
_GATE_LABELS = {
    GateType.AND: "AND",
    GateType.OR: "OR",
    GateType.KOFN: "K/N",
    GateType.XOR: "XOR",
    GateType.NOT: "NOT",
    GateType.INHIBIT: "INHIBIT",
}


def tree_to_dot(tree: FaultTree) -> str:
    """Render the tree as a Graphviz digraph (top at the top)."""
    lines = ["digraph fault_tree {", "  rankdir=TB;",
             "  node [fontname=\"Helvetica\"];"]

    def node_id(event: Event) -> str:
        return f"\"{event.name}\""

    for event in tree.iter_events():
        if isinstance(event, IntermediateEvent):
            gate = event.gate
            label = f"{event.name}\\n[{_GATE_LABELS[gate.gate_type]}"
            if gate.gate_type is GateType.KOFN:
                label += f" k={gate.k}"
            label += "]"
            shape = "box"
            style = ", style=bold" if isinstance(event, Hazard) else ""
            lines.append(
                f"  {node_id(event)} [label=\"{label}\", shape={shape}{style}];")
        elif isinstance(event, PrimaryFailure):
            lines.append(
                f"  {node_id(event)} [label=\"{event.name}\", shape=circle];")
        elif isinstance(event, Condition):
            lines.append(
                f"  {node_id(event)} [label=\"{event.name}\", shape=oval, "
                "style=dashed];")
        elif isinstance(event, HouseEvent):
            lines.append(
                f"  {node_id(event)} [label=\"{event.name}\", shape=house];")
    for event in tree.iter_events():
        if isinstance(event, IntermediateEvent):
            gate = event.gate
            for child in gate.inputs:
                lines.append(f"  {node_id(event)} -> {node_id(child)};")
            if gate.gate_type is GateType.INHIBIT:
                lines.append(
                    f"  {node_id(event)} -> \"{gate.condition.name}\" "
                    "[style=dashed];")
    lines.append("}")
    return "\n".join(lines) + "\n"
