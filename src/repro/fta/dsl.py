"""A small builder DSL for constructing fault trees readably.

The paper's trees are described in prose ("the immediate causes of the top
event — collision — are that either the driver ignores some stop signals OR
the signals are not turned on").  The DSL keeps the code at that level:

>>> from repro.fta.dsl import primary, condition, OR, AND, INHIBIT, hazard
>>> driver = primary("OHV ignores signal", 1e-4)
>>> out = primary("Signal out of order", 1e-5)
>>> not_on = primary("Signal not activated", 1e-5)
>>> signals_off = OR("Signal not on", out, not_on)
>>> tree = hazard("Collision", OR_gate=[driver, signals_off])  # doctest: +SKIP

All helpers return event objects that plug directly into
:class:`~repro.fta.tree.FaultTree`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FaultTreeError
from repro.fta.events import (
    Condition,
    Event,
    Hazard,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import Gate, GateType
from repro.fta.tree import FaultTree


def primary(name: str, probability: Optional[float] = None,
            description: str = "") -> PrimaryFailure:
    """Create a primary failure (leaf)."""
    return PrimaryFailure(name, probability, description)


def condition(name: str, probability: Optional[float] = None,
              description: str = "") -> Condition:
    """Create an INHIBIT condition (environmental circumstance)."""
    return Condition(name, probability, description)


def house(name: str, state: bool, description: str = "") -> HouseEvent:
    """Create a house event (deterministic switch)."""
    return HouseEvent(name, state, description)


def AND(name: str, *inputs: Event, description: str = "") -> IntermediateEvent:
    """Create an intermediate event refined through an AND gate."""
    return IntermediateEvent(name, Gate(GateType.AND, inputs), description)


def OR(name: str, *inputs: Event, description: str = "") -> IntermediateEvent:
    """Create an intermediate event refined through an OR gate."""
    return IntermediateEvent(name, Gate(GateType.OR, inputs), description)


def KOFN(name: str, k: int, *inputs: Event,
         description: str = "") -> IntermediateEvent:
    """Create an intermediate event refined through a K-of-N gate."""
    return IntermediateEvent(name, Gate(GateType.KOFN, inputs, k=k),
                             description)


def XOR(name: str, *inputs: Event, description: str = "") -> IntermediateEvent:
    """Create an intermediate event refined through an XOR gate."""
    return IntermediateEvent(name, Gate(GateType.XOR, inputs), description)


def NOT(name: str, input_event: Event,
        description: str = "") -> IntermediateEvent:
    """Create an intermediate event refined through a NOT gate."""
    return IntermediateEvent(name, Gate(GateType.NOT, [input_event]),
                             description)


def INHIBIT(name: str, cause: Event, cond: Condition,
            description: str = "") -> IntermediateEvent:
    """Create an intermediate event guarded by an INHIBIT condition."""
    return IntermediateEvent(
        name, Gate(GateType.INHIBIT, [cause], condition=cond), description)


def hazard(name: str, gate: Optional[Gate] = None,
           OR_gate: Optional[list] = None, AND_gate: Optional[list] = None,
           description: str = "") -> Hazard:
    """Create a hazard (top event) from a gate or a gate shorthand.

    Exactly one of ``gate``, ``OR_gate`` (list of inputs) or ``AND_gate``
    must be given.
    """
    provided = [x is not None for x in (gate, OR_gate, AND_gate)]
    if sum(provided) != 1:
        raise FaultTreeError(
            "hazard() needs exactly one of gate, OR_gate, AND_gate")
    if OR_gate is not None:
        gate = Gate(GateType.OR, OR_gate)
    elif AND_gate is not None:
        gate = Gate(GateType.AND, AND_gate)
    return Hazard(name, gate, description)


def tree(top: IntermediateEvent, name: Optional[str] = None) -> FaultTree:
    """Wrap a built top event into a validated :class:`FaultTree`."""
    return FaultTree(top, name=name)
