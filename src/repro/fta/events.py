"""Event types of a fault tree.

Following the paper's terminology (Sect. II):

* the **hazard** (top event) is the root,
* **primary failures** are the leaves that are not investigated further,
* **intermediate events** are inner nodes, each refined through a gate,
* INHIBIT-gate **conditions** are environmental circumstances — explicitly
  *not* failures — whose probabilities become the paper's constraint
  probabilities (Sect. II-D.1),
* **house events** are the classic FTA switch: an event that is certainly
  on or off in a given analysis configuration.

Events are identified by name; two event objects with the same name inside
one tree must be the same object (validated by :class:`repro.fta.tree.FaultTree`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FaultTreeError


class Event:
    """Base class for every node of a fault tree."""

    def __init__(self, name: str, description: str = ""):
        if not name or not isinstance(name, str):
            raise FaultTreeError(f"event name must be a non-empty string, "
                                 f"got {name!r}")
        self.name = name
        self.description = description

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class PrimaryFailure(Event):
    """A basic component failure — a leaf of the fault tree.

    ``probability`` is the event's default point probability; it may be
    omitted when probabilities are supplied at quantification time (e.g.
    parameterized probabilities evaluated for a concrete parameter vector).
    """

    def __init__(self, name: str, probability: Optional[float] = None,
                 description: str = ""):
        super().__init__(name, description)
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise FaultTreeError(
                f"probability of {name!r} must be in [0, 1], "
                f"got {probability}")
        self.probability = probability


class Condition(Event):
    """An INHIBIT-gate condition: an environmental circumstance.

    The paper stresses that "unlike all other nodes of the fault tree, this
    condition must not be a failure or undesired event"; quantifying these
    conditions yields the constraint probabilities of Sect. II-D.1.
    """

    def __init__(self, name: str, probability: Optional[float] = None,
                 description: str = ""):
        super().__init__(name, description)
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise FaultTreeError(
                f"probability of {name!r} must be in [0, 1], "
                f"got {probability}")
        self.probability = probability


class HouseEvent(Event):
    """A deterministic on/off event (classic FTA 'house' symbol).

    Used to switch analysis configurations: a house event that is ``True``
    behaves as a certain event, ``False`` prunes its branch.
    """

    def __init__(self, name: str, state: bool, description: str = ""):
        super().__init__(name, description)
        self.state = bool(state)


class IntermediateEvent(Event):
    """An inner node, refined into its immediate causes through a gate."""

    def __init__(self, name: str, gate: "Gate", description: str = ""):
        super().__init__(name, description)
        from repro.fta.gates import Gate  # local import to avoid a cycle
        if not isinstance(gate, Gate):
            raise FaultTreeError(
                f"intermediate event {name!r} requires a Gate, "
                f"got {type(gate).__name__}")
        self.gate = gate


class Hazard(IntermediateEvent):
    """The top event of a fault tree: the situation that must be avoided."""
