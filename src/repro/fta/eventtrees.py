"""Event tree analysis: from initiating events to outcome frequencies.

Fault trees answer "how can this barrier fail?"; event trees answer
"what happens after the initiating event, given which barriers fail?".
Together they form the classic probabilistic risk assessment (PRA)
pipeline: an initiating event with a frequency, a sequence of branch
points (mitigation systems whose failure probabilities may come from
fault trees), and one outcome per path.

The Elbtunnel collision chain is exactly such a sequence: an OHV heads
for an old tube (initiator), the detection chain may fail (fault-tree
backed), the stop signals may be out of order, the driver may ignore
them — only the all-barriers-fail path ends in a collision.

Outcome frequencies multiply the initiator frequency along each path;
:meth:`EventTreeResult.outcome_frequencies` aggregates paths by outcome,
and :meth:`EventTreeResult.risk` folds in per-outcome costs — the same
weighted-sum construction as the paper's cost function (Sect. III-A),
now over consequence categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import QuantificationError
from repro.fta.quantify import hazard_probability
from repro.fta.tree import FaultTree

BranchSource = Union[float, FaultTree]


@dataclass(frozen=True)
class BranchPoint:
    """One mitigation barrier: its name and failure probability source.

    ``source`` is either a fixed probability or a fault tree (quantified
    with ``method`` and optional ``probabilities`` at evaluation time).
    """

    name: str
    source: BranchSource
    probabilities: Optional[Dict[str, float]] = None
    method: str = "exact"

    def failure_probability(self) -> float:
        """Evaluate the barrier's failure probability."""
        if isinstance(self.source, FaultTree):
            return hazard_probability(self.source, self.probabilities,
                                      method=self.method)
        p = float(self.source)
        if not 0.0 <= p <= 1.0:
            raise QuantificationError(
                f"branch {self.name!r} probability must be in [0, 1], "
                f"got {p}")
        return p


@dataclass(frozen=True)
class Sequence_:
    """One path through the event tree."""

    #: Branch outcomes in order; True = the barrier FAILED.
    failures: Tuple[bool, ...]
    outcome: str
    frequency: float

    def label(self, branches: Sequence[BranchPoint]) -> str:
        """Human-readable path description."""
        steps = [
            f"{branch.name}:{'fail' if failed else 'ok'}"
            for branch, failed in zip(branches, self.failures)
        ]
        return " -> ".join(steps) + f" => {self.outcome}"


@dataclass(frozen=True)
class EventTreeResult:
    """All sequences of one event tree evaluation."""

    initiator: str
    initiator_frequency: float
    branches: Tuple[BranchPoint, ...]
    sequences: Tuple[Sequence_, ...]

    def outcome_frequencies(self) -> Dict[str, float]:
        """Total frequency per outcome category."""
        totals: Dict[str, float] = {}
        for sequence in self.sequences:
            totals[sequence.outcome] = totals.get(sequence.outcome, 0.0) \
                + sequence.frequency
        return totals

    def frequency_of(self, outcome: str) -> float:
        """Frequency of one outcome (0 when it never occurs)."""
        return self.outcome_frequencies().get(outcome, 0.0)

    def risk(self, outcome_costs: Dict[str, float]) -> float:
        """Expected cost rate: sum of frequency * cost over outcomes.

        Every outcome present in the tree must be priced (cost 0 is
        fine); unknown outcomes in ``outcome_costs`` are rejected.
        """
        frequencies = self.outcome_frequencies()
        missing = set(frequencies) - set(outcome_costs)
        if missing:
            raise QuantificationError(
                f"no cost given for outcomes {sorted(missing)}")
        extra = set(outcome_costs) - set(frequencies)
        if extra:
            raise QuantificationError(
                f"costs given for unknown outcomes {sorted(extra)}")
        return sum(frequencies[name] * outcome_costs[name]
                   for name in frequencies)

    def dominant_sequence(self, outcome: str) -> Sequence_:
        """The highest-frequency path reaching ``outcome``."""
        candidates = [s for s in self.sequences if s.outcome == outcome]
        if not candidates:
            raise QuantificationError(
                f"no sequence reaches outcome {outcome!r}")
        return max(candidates, key=lambda s: s.frequency)


class EventTree:
    """An event tree: initiator, ordered branch points, outcome rule.

    Parameters
    ----------
    initiator:
        Name of the initiating event.
    frequency:
        Its occurrence frequency (per unit time, or a probability for
        per-demand analyses).
    branches:
        Barriers in challenge order.
    outcome_rule:
        Maps the tuple of branch failures (True = failed) to an outcome
        name.  Defaults to binary: any barrier holding -> "mitigated",
        all failing -> "unmitigated".
    """

    def __init__(self, initiator: str, frequency: float,
                 branches: Sequence[BranchPoint],
                 outcome_rule=None):
        if frequency < 0.0:
            raise QuantificationError(
                f"initiator frequency must be >= 0, got {frequency}")
        if not branches:
            raise QuantificationError(
                "event tree needs at least one branch point")
        names = [b.name for b in branches]
        if len(set(names)) != len(names):
            raise QuantificationError(
                f"duplicate branch names: {names}")
        self.initiator = initiator
        self.frequency = frequency
        self.branches: Tuple[BranchPoint, ...] = tuple(branches)
        self._outcome_rule = outcome_rule or self._default_rule

    @staticmethod
    def _default_rule(failures: Tuple[bool, ...]) -> str:
        return "unmitigated" if all(failures) else "mitigated"

    def evaluate(self) -> EventTreeResult:
        """Enumerate every path and compute its frequency."""
        probabilities = [b.failure_probability() for b in self.branches]
        sequences: List[Sequence_] = []

        def expand(index: int, failures: Tuple[bool, ...],
                   weight: float) -> None:
            if index == len(self.branches):
                outcome = self._outcome_rule(failures)
                if not isinstance(outcome, str) or not outcome:
                    raise QuantificationError(
                        f"outcome rule returned {outcome!r} for "
                        f"{failures}; expected a non-empty string")
                sequences.append(Sequence_(
                    failures=failures, outcome=outcome,
                    frequency=self.frequency * weight))
                return
            p_fail = probabilities[index]
            expand(index + 1, failures + (True,), weight * p_fail)
            expand(index + 1, failures + (False,),
                   weight * (1.0 - p_fail))

        expand(0, (), 1.0)
        return EventTreeResult(
            initiator=self.initiator,
            initiator_frequency=self.frequency,
            branches=self.branches, sequences=tuple(sequences))
