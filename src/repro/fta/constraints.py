"""Constraint probabilities (paper Sect. II-D.1).

A cut set often causes its hazard only when the environment cooperates —
the conditions stated on the INHIBIT gates along the paths from the hazard
to the cut set's failures.  Quantifying those conditions refines the cut
set probability:

``P(CS) = P(Constraints) * prod_{PF in CS} P(PF)``        (paper Eq. 2)

Three policies are provided for combining several conditions into one
constraint probability:

* :attr:`ConstraintPolicy.WORST_CASE` — ``P(Constraints) = 1``; the
  environment is always as bad as possible.  This recovers classic
  quantitative FTA (paper: "If one chooses P(Constraints)=1 ... one gets
  the same formula as before").
* :attr:`ConstraintPolicy.INDEPENDENT` — the product of the condition
  probabilities; an upper bound when the conditions are independent.
* :attr:`ConstraintPolicy.FRECHET` — the minimum of the condition
  probabilities: the tight Fréchet upper bound ``P(A and B) <= min(P(A),
  P(B))``, valid under arbitrary dependence.  (The paper states "the
  maximum is an upper bound" for the dependent case; the maximum is indeed
  an upper bound but the minimum is the tight one, so we use it.)
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import QuantificationError
from repro.fta.cutsets import CutSet


class ConstraintPolicy(enum.Enum):
    """How a cut set's INHIBIT conditions enter its probability."""

    WORST_CASE = "worst_case"
    INDEPENDENT = "independent"
    FRECHET = "frechet"


def constraint_probability(cut_set: CutSet, probabilities: Dict[str, float],
                           policy: ConstraintPolicy =
                           ConstraintPolicy.INDEPENDENT) -> float:
    """Return ``P(Constraints)`` for one cut set under a policy.

    ``probabilities`` must provide a value in ``[0, 1]`` for every
    condition of the cut set unless the policy is ``WORST_CASE``.
    """
    if policy is ConstraintPolicy.WORST_CASE or not cut_set.conditions:
        return 1.0
    values = []
    for name in cut_set.conditions:
        if name not in probabilities:
            raise QuantificationError(
                f"no probability given for condition {name!r}")
        p = probabilities[name]
        if not 0.0 <= p <= 1.0:
            raise QuantificationError(
                f"probability of condition {name!r} must be in [0, 1], "
                f"got {p}")
        values.append(p)
    if policy is ConstraintPolicy.INDEPENDENT:
        product = 1.0
        for p in values:
            product *= p
        return product
    if policy is ConstraintPolicy.FRECHET:
        return min(values)
    raise QuantificationError(f"unknown constraint policy {policy!r}")


def constrained_cut_set_probability(
        cut_set: CutSet, probabilities: Dict[str, float],
        policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT) -> float:
    """Return the constrained probability of one cut set (paper Eq. 2)."""
    product = constraint_probability(cut_set, probabilities, policy)
    for name in cut_set.failures:
        if name not in probabilities:
            raise QuantificationError(
                f"no probability given for primary failure {name!r}")
        p = probabilities[name]
        if not 0.0 <= p <= 1.0:
            raise QuantificationError(
                f"probability of {name!r} must be in [0, 1], got {p}")
        product *= p
    return product
