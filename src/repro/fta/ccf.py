"""Common-cause failure modelling via the beta-factor method.

The paper notes that FTA's independence assumption breaks down under
statistical correlation and points to common cause analysis as the remedy
(Sect. II-C).  The beta-factor model is the standard first-order fix: a
fraction ``beta`` of each component's failure probability is attributed to
a shared common cause.

:func:`apply_beta_factor` rewrites a fault tree: every primary failure in
the common-cause group is replaced by ``OR(independent part, common cause
event)`` where the independent part keeps probability ``(1 - beta) * p``
and the single shared common-cause event carries ``beta * p_max`` (the
conservative choice when group members have unequal probabilities).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import FaultTreeError
from repro.fta.events import (
    Condition,
    Event,
    Hazard,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import Gate, GateType
from repro.fta.tree import FaultTree


def apply_beta_factor(tree: FaultTree, group: Iterable[str], beta: float,
                      cc_name: Optional[str] = None) -> FaultTree:
    """Return a new tree with a beta-factor common cause over ``group``.

    Parameters
    ----------
    tree:
        Source tree; not modified.
    group:
        Names of the primary failures sharing the common cause.  Each must
        exist in the tree and carry a default probability.
    beta:
        Fraction of each member's failure probability attributed to the
        common cause, ``0 <= beta <= 1``.
    cc_name:
        Name of the introduced common-cause event; defaults to
        ``CCF(<sorted member names>)``.
    """
    if not 0.0 <= beta <= 1.0:
        raise FaultTreeError(f"beta must be in [0, 1], got {beta}")
    members = sorted(set(group))
    if not members:
        raise FaultTreeError("common-cause group must not be empty")
    probabilities: Dict[str, float] = {}
    for name in members:
        event = tree.event(name)
        if not isinstance(event, PrimaryFailure):
            raise FaultTreeError(
                f"{name!r} is not a primary failure; beta-factor groups "
                "contain primary failures only")
        if event.probability is None:
            raise FaultTreeError(
                f"{name!r} has no default probability; the beta-factor "
                "rewrite needs one")
        probabilities[name] = event.probability

    cc_name = cc_name or f"CCF({','.join(members)})"
    if cc_name in tree:
        raise FaultTreeError(
            f"common-cause event name {cc_name!r} already used in tree")
    common = PrimaryFailure(
        cc_name, probability=beta * max(probabilities.values()),
        description=f"beta-factor common cause of {', '.join(members)}")

    rebuilt: Dict[int, Event] = {}

    def clone(event: Event) -> Event:
        key = id(event)
        if key in rebuilt:
            return rebuilt[key]
        if isinstance(event, PrimaryFailure):
            if event.name in probabilities:
                independent = PrimaryFailure(
                    f"{event.name}~indep",
                    probability=(1.0 - beta) * probabilities[event.name],
                    description=f"independent part of {event.name}")
                gate = Gate(GateType.OR, [independent, common])
                result: Event = IntermediateEvent(
                    event.name, gate,
                    description=event.description or
                    f"{event.name} with common cause split out")
            else:
                result = event
        elif isinstance(event, (Condition, HouseEvent)):
            result = event
        elif isinstance(event, IntermediateEvent):
            gate = event.gate
            new_gate = Gate(gate.gate_type,
                            [clone(child) for child in gate.inputs],
                            k=gate.k, condition=gate.condition)
            cls = Hazard if isinstance(event, Hazard) else IntermediateEvent
            result = cls(event.name, new_gate, description=event.description)
        else:
            raise FaultTreeError(
                f"cannot clone event of type {type(event).__name__}")
        rebuilt[key] = result
        return result

    new_top = clone(tree.top)
    assert isinstance(new_top, IntermediateEvent)
    return FaultTree(new_top, name=tree.name)
