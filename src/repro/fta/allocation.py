"""Reliability allocation: cheapest way to reach a target hazard level.

The inverse of quantification: given a fault tree, a *target* hazard
probability, and the cost of improving each component, decide **which
components to improve and by how much**.  This closes the loop the paper
opens — safety optimization tunes free parameters of a fixed design;
allocation tunes the design's component quality budget.

Formulation: each improvable leaf ``i`` gets an improvement factor
``f_i in [min_factor, 1]`` multiplying its failure probability; the cost
of a factor is ``cost_i * log10(1 / f_i)`` (component price grows per
*decade* of reliability improvement, the standard engineering model).
Minimize total cost subject to ``P(H)(f) <= target``, solved with the
library's own optimizers via an exact-penalty objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import QuantificationError
from repro.fta.quantify import hazard_probability, probability_map
from repro.fta.tree import FaultTree
from repro.opt.coordinate import coordinate_descent
from repro.opt.problem import Box, Problem


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a reliability allocation."""

    target: float
    achieved: float
    feasible: bool
    total_cost: float
    factors: Dict[str, float]          # leaf -> improvement factor
    new_probabilities: Dict[str, float]

    def improvements(self) -> Dict[str, float]:
        """Leaves actually improved (factor < 1), by decades."""
        return {name: math.log10(1.0 / factor)
                for name, factor in self.factors.items()
                if factor < 0.999}


def allocate_improvements(
        tree: FaultTree, target: float, improvement_costs: Dict[str, float],
        probabilities: Optional[Dict[str, float]] = None,
        min_factor: float = 1e-3, method: str = "exact",
        penalty: float = 1e6,
        sweeps: int = 40) -> AllocationResult:
    """Find the cheapest component improvements reaching ``target``.

    Parameters
    ----------
    tree:
        The hazard's fault tree.
    target:
        Required hazard probability (must be below the current value for
        the problem to be non-trivial).
    improvement_costs:
        Cost per decade of improvement for each improvable leaf
        (leaves not listed are fixed).
    probabilities:
        Leaf probability overrides (merged over event defaults).
    min_factor:
        Best achievable improvement factor (1e-3 = three decades).
    method:
        Quantification method used inside the optimization.
    penalty:
        Exact-penalty weight on constraint violation (in cost units per
        unit of log-probability violation).
    sweeps:
        Coordinate-descent sweep budget.
    """
    if not 0.0 < target < 1.0:
        raise QuantificationError(
            f"target must be in (0, 1), got {target}")
    if not improvement_costs:
        raise QuantificationError("no improvable leaves given")
    if not 0.0 < min_factor < 1.0:
        raise QuantificationError(
            f"min_factor must be in (0, 1), got {min_factor}")
    probs = probability_map(tree, probabilities)
    for name, cost in improvement_costs.items():
        if name not in probs:
            raise QuantificationError(
                f"improvable leaf {name!r} not in the tree")
        if cost <= 0.0:
            raise QuantificationError(
                f"improvement cost of {name!r} must be > 0, got {cost}")

    names = sorted(improvement_costs)
    current = hazard_probability(tree, probs, method=method)
    if current <= target:
        return AllocationResult(
            target=target, achieved=current, feasible=True,
            total_cost=0.0, factors={name: 1.0 for name in names},
            new_probabilities=dict(probs))

    # Decision variables: decades of improvement per leaf (0 = none).
    max_decades = math.log10(1.0 / min_factor)
    box = Box([(0.0, max_decades)] * len(names))
    log_target = math.log(target)

    def objective(x: Tuple[float, ...]) -> float:
        overrides = dict(probs)
        cost = 0.0
        for name, decades in zip(names, x):
            overrides[name] = probs[name] * 10.0 ** (-decades)
            cost += improvement_costs[name] * decades
        achieved = hazard_probability(tree, overrides, method=method)
        violation = max(0.0, math.log(max(achieved, 1e-300)) - log_target)
        return cost + penalty * violation

    problem = Problem(objective, box, name="allocation")
    result = coordinate_descent(problem, x0=tuple([0.0] * len(names)),
                                max_sweeps=sweeps)

    factors = {name: 10.0 ** (-decades)
               for name, decades in zip(names, result.x)}
    new_probs = dict(probs)
    for name in names:
        new_probs[name] = probs[name] * factors[name]
    achieved = hazard_probability(tree, new_probs, method=method)
    total_cost = sum(improvement_costs[name] *
                     math.log10(1.0 / factors[name]) for name in names)
    all_factors = {name: factors.get(name, 1.0) for name in names}
    return AllocationResult(
        target=target, achieved=achieved,
        feasible=achieved <= target * (1.0 + 1e-6),
        total_cost=total_cost, factors=all_factors,
        new_probabilities=new_probs)
