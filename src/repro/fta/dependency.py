"""Constraint dependencies: implication-aware constraint probabilities.

The paper's future work (Sect. V): "if logical implication of two
constraints (A -> B) can be shown ... then [one constraint's probability
bounds the other's]".  The quantitative consequence used here is exact:
when A implies B, the conjunction ``A and B`` *is* A, so implied
conditions contribute nothing to a cut set's constraint probability and
multiplying their probabilities in (the independence policy) is wrong —
it understates nothing but double-counts overlap.

:class:`ImplicationSet` holds declared implications between condition
names (closed under transitivity); :func:`reduce_conditions` drops every
condition implied by another member of the set, and
:func:`dependent_constraint_probability` evaluates the constraint
probability on the reduced set — exact for the declared implications,
falling back to the chosen policy for the remaining (unrelated)
conditions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.errors import QuantificationError
from repro.fta.constraints import ConstraintPolicy, constraint_probability
from repro.fta.cutsets import CutSet


class ImplicationSet:
    """A set of implications ``antecedent -> consequent`` between
    conditions, closed under transitivity."""

    def __init__(self, implications: Iterable[Tuple[str, str]] = ()):
        self._implies: Dict[str, Set[str]] = {}
        for antecedent, consequent in implications:
            self.add(antecedent, consequent)

    def add(self, antecedent: str, consequent: str) -> None:
        """Declare ``antecedent -> consequent`` and re-close."""
        if antecedent == consequent:
            return
        self._implies.setdefault(antecedent, set()).add(consequent)
        self._close()
        if antecedent in self._implies.get(consequent, set()):
            raise QuantificationError(
                f"implication cycle between {antecedent!r} and "
                f"{consequent!r}: equivalent conditions should be "
                "merged, not declared as mutual implications")

    def _close(self) -> None:
        changed = True
        while changed:
            changed = False
            for antecedent, consequents in list(self._implies.items()):
                extra: Set[str] = set()
                for consequent in consequents:
                    extra |= self._implies.get(consequent, set())
                new = extra - consequents - {antecedent}
                if new:
                    consequents |= new
                    changed = True

    def implies(self, antecedent: str, consequent: str) -> bool:
        """True when ``antecedent -> consequent`` is declared/derivable."""
        return consequent in self._implies.get(antecedent, set())

    def consequences(self, antecedent: str) -> FrozenSet[str]:
        """Every condition implied by ``antecedent``."""
        return frozenset(self._implies.get(antecedent, set()))


def reduce_conditions(conditions: Iterable[str],
                      implications: ImplicationSet) -> FrozenSet[str]:
    """Drop conditions implied by other members of the set.

    The conjunction over the reduced set is logically equivalent to the
    original conjunction, so any probability computed from it is at
    least as tight.
    """
    members = set(conditions)
    kept = {
        c for c in members
        if not any(other != c and implications.implies(other, c)
                   for other in members)
    }
    return frozenset(kept)


def dependent_constraint_probability(
        cut_set: CutSet, probabilities: Dict[str, float],
        implications: ImplicationSet,
        policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT) -> float:
    """Constraint probability with declared implications applied.

    Reduces the cut set's conditions (dropping implied ones), then
    applies the standard policy to the remainder.  With a full
    implication chain the result is exact; with none it reduces to
    :func:`repro.fta.constraints.constraint_probability`.
    """
    reduced = CutSet(cut_set.failures,
                     reduce_conditions(cut_set.conditions, implications))
    return constraint_probability(reduced, probabilities, policy)
