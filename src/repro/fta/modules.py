"""Module (independent subtree) detection for fault trees.

A *module* is an intermediate event whose descendant leaves are reachable
from the top event **only through it**.  Modules are the classic FTA
decomposition lever: a module can be quantified once and treated as a
single super-component, and its minimal cut sets compose with the rest
of the tree without interaction.  Detection also tells the analyst which
subsystems are genuinely independent — shared sensors (like the
Elbtunnel light barriers feeding several detection chains) show up
precisely as *non*-modular boundaries.

Detection uses the Dutuit–Rauzy visit-date algorithm, extended to the
(possibly DAG-shaped) trees this codebase allows: one depth-first walk
stamps every event with first/last visit dates (re-encounters of a
shared event bump its last date without re-expanding it), then a single
bottom-up pass aggregates the date range covered by each event's
descendants.  ``M`` is a module iff every descendant visit falls
strictly inside ``M``'s own expansion window — i.e. nothing below ``M``
is reachable except through ``M``.  The whole check is linear in the
number of edges, where the naive path-counting formulation is quadratic
on deep chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.fta.events import Event, IntermediateEvent, PrimaryFailure
from repro.fta.gates import Gate, GateType
from repro.fta.quantify import hazard_probability, probability_map
from repro.fta.tree import FaultTree


@dataclass(frozen=True)
class Module:
    """One detected module: its root event and its private leaves."""

    root: str
    leaves: FrozenSet[str]

    @property
    def size(self) -> int:
        """Number of leaves owned by the module."""
        return len(self.leaves)


def _children(event: IntermediateEvent) -> List[Event]:
    gate = event.gate
    children = list(gate.inputs)
    if gate.gate_type is GateType.INHIBIT:
        children.append(gate.condition)
    return children


def _module_roots(root: Event) -> Set[int]:
    """Ids of events whose descendants are reachable only through them.

    Dutuit–Rauzy visit dates, DAG-safe: the DFS expands each event once;
    later encounters merely bump its last-visit date.  An event is a
    module root iff the earliest first-visit among its descendants lands
    after its own first visit and the latest last-visit lands before its
    expansion completed — any path slipping into the subtree from
    outside stamps a date beyond that window.
    """
    clock = 0
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    completed: Dict[int, int] = {}
    order: List[Event] = []             # children complete before parents
    stack: List[tuple] = [(root, False)]
    while stack:
        event, leaving = stack.pop()
        key = id(event)
        clock += 1
        if leaving:
            completed[key] = clock
            last[key] = clock
            order.append(event)
            continue
        if key in first:
            last[key] = clock
            continue
        first[key] = last[key] = clock
        if isinstance(event, IntermediateEvent):
            stack.append((event, True))
            for child in reversed(_children(event)):
                stack.append((child, False))
        else:
            completed[key] = clock
            order.append(event)
    # Aggregate each event's descendant date range bottom-up.  The walk
    # above appended events children-first, so one linear pass suffices.
    min_first: Dict[int, int] = {}
    max_last: Dict[int, int] = {}
    roots: Set[int] = set()
    for event in order:
        key = id(event)
        if not isinstance(event, IntermediateEvent):
            min_first[key] = first[key]
            max_last[key] = last[key]
            continue
        below_first = min(min_first[id(c)] for c in _children(event))
        below_last = max(max_last[id(c)] for c in _children(event))
        if below_first > first[key] and below_last < completed[key]:
            roots.add(key)
        min_first[key] = min(first[key], below_first)
        max_last[key] = max(last[key], below_last)
    return roots


def _leaves_below(event: Event) -> Dict[int, Event]:
    """All leaf objects reachable from ``event``, keyed by id."""
    leaves: Dict[int, Event] = {}
    seen: Set[int] = set()
    stack: List[Event] = [event]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, IntermediateEvent):
            stack.extend(_children(node))
        else:
            leaves[id(node)] = node
    return leaves


def find_modules(tree: FaultTree) -> List[Module]:
    """Return all modules of the tree, largest first.

    The top event is excluded (it is trivially a module).  An
    intermediate event is reported when every root-path to each of its
    leaves passes through it.
    """
    roots = _module_roots(tree.top)
    modules: List[Module] = []
    for event in tree.iter_events():
        if not isinstance(event, IntermediateEvent) or event is tree.top:
            continue
        if id(event) in roots:
            names = frozenset(l.name
                              for l in _leaves_below(event).values())
            modules.append(Module(root=event.name, leaves=names))
    modules.sort(key=lambda m: (-m.size, m.root))
    return modules


def select_modules(tree: FaultTree) -> List[Module]:
    """Greedily pick non-overlapping modules worth folding.

    :func:`find_modules` reports *every* module, including nested ones;
    this keeps the classic quantification selection: largest first, skip
    any module sharing leaves with an already-chosen one, and skip
    single-leaf modules (folding them buys nothing).  Shared by
    :func:`modular_probability` and :mod:`repro.incremental`, which must
    agree on the decomposition to produce bit-identical results.
    """
    chosen: List[Module] = []
    used: Set[str] = set()
    for module in find_modules(tree):
        if module.leaves & used:
            continue
        if module.size < 2:
            continue   # folding single leaves buys nothing
        chosen.append(module)
        used |= module.leaves
    return chosen


def fold_modules(tree: FaultTree, replacements: Dict[str, float],
                 name: Optional[str] = None) -> FaultTree:
    """Clone ``tree`` with each named subtree folded into a single leaf.

    Every intermediate event whose name appears in ``replacements``
    becomes a :class:`PrimaryFailure` of the same name carrying the given
    probability; everything else is rebuilt structurally (leaves are
    shared, gates are re-created).  The clone walks an explicit stack —
    5,000-gate chains don't hit the recursion limit — and routes INHIBIT
    conditions through the memo like any other child, so a condition
    below a folded region can never leak a stale object into the clone.
    """
    if tree.top.name in replacements:
        raise ValueError(
            f"cannot fold the top event {tree.top.name!r} into a leaf")
    rebuilt: Dict[int, Event] = {}
    stack: List[tuple] = [(tree.top, False)]
    while stack:
        event, ready = stack.pop()
        key = id(event)
        if key in rebuilt:
            continue
        if not isinstance(event, IntermediateEvent):
            rebuilt[key] = event
            continue
        if event.name in replacements:
            rebuilt[key] = PrimaryFailure(
                event.name, probability=replacements[event.name],
                description=f"module {event.name} folded")
            continue
        gate = event.gate
        if ready:
            condition = (rebuilt[id(gate.condition)]
                         if gate.gate_type is GateType.INHIBIT else None)
            new_gate = Gate(gate.gate_type,
                            [rebuilt[id(child)] for child in gate.inputs],
                            k=gate.k, condition=condition)
            rebuilt[key] = IntermediateEvent(event.name, new_gate,
                                             event.description)
        else:
            stack.append((event, True))
            for child in reversed(_children(event)):
                if id(child) not in rebuilt:
                    stack.append((child, False))
    top = rebuilt[id(tree.top)]
    assert isinstance(top, IntermediateEvent)
    return FaultTree(top, name=tree.name if name is None else name)


def modular_probability(tree: FaultTree,
                        probabilities: Optional[Dict[str, float]] = None,
                        method: str = "exact") -> float:
    """Quantify the tree by quantifying maximal modules independently.

    Each chosen module is quantified on its own subtree and replaced by
    an equivalent single leaf carrying the module's probability; the
    reduced tree is then quantified.  For trees with independent leaves
    this equals direct quantification (tested) while keeping every BDD
    small.

    Note: module substitution preserves *probability* for independent
    leaves under the exact method; with ``rare_event`` it composes the
    same approximation the paper's Eq. 1 makes.
    """
    probs = probability_map(tree, probabilities)
    replacements: Dict[str, float] = {}
    for module in select_modules(tree):
        root_event = tree.event(module.root)
        assert isinstance(root_event, IntermediateEvent)
        sub = FaultTree(root_event, name=module.root)
        replacements[module.root] = hazard_probability(sub, probs,
                                                       method=method)

    if not replacements:
        return hazard_probability(tree, probs, method=method)

    reduced = fold_modules(tree, replacements)
    remaining = dict(probs)
    remaining.update(replacements)
    return hazard_probability(reduced, remaining, method=method)
