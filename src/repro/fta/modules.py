"""Module (independent subtree) detection for fault trees.

A *module* is an intermediate event whose descendant leaves are reachable
from the top event **only through it**.  Modules are the classic FTA
decomposition lever: a module can be quantified once and treated as a
single super-component, and its minimal cut sets compose with the rest
of the tree without interaction.  Detection also tells the analyst which
subsystems are genuinely independent — shared sensors (like the
Elbtunnel light barriers feeding several detection chains) show up
precisely as *non*-modular boundaries.

Detection here uses exact path counting on the (possibly DAG-shaped)
tree: an intermediate event ``M`` with ``p(M)`` root-paths is a module
iff for every leaf ``l`` below it, the total number of root-paths to
``l`` equals ``p(M)`` times the number of paths from ``M`` to ``l`` —
i.e. every occurrence of ``l`` funnels through ``M``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.fta.events import Event, IntermediateEvent, PrimaryFailure
from repro.fta.gates import Gate, GateType
from repro.fta.quantify import hazard_probability, probability_map
from repro.fta.tree import FaultTree


@dataclass(frozen=True)
class Module:
    """One detected module: its root event and its private leaves."""

    root: str
    leaves: FrozenSet[str]

    @property
    def size(self) -> int:
        """Number of leaves owned by the module."""
        return len(self.leaves)


def _children(event: IntermediateEvent) -> List[Event]:
    gate = event.gate
    children = list(gate.inputs)
    if gate.gate_type is GateType.INHIBIT:
        children.append(gate.condition)
    return children


def _path_counts(root: Event) -> Dict[int, int]:
    """Number of distinct root-to-node paths, keyed by node id."""
    counts: Dict[int, int] = {id(root): 1}
    order: List[Event] = []
    seen: Set[int] = set()

    def topo(event: Event) -> None:
        if id(event) in seen:
            return
        seen.add(id(event))
        if isinstance(event, IntermediateEvent):
            for child in _children(event):
                topo(child)
        order.append(event)

    topo(root)
    for event in reversed(order):           # root first
        if not isinstance(event, IntermediateEvent):
            continue
        base = counts.get(id(event), 0)
        for child in _children(event):
            counts[id(child)] = counts.get(id(child), 0) + base
    return counts


def _leaves_below(event: Event) -> Dict[int, Event]:
    """All leaf objects reachable from ``event``, keyed by id."""
    leaves: Dict[int, Event] = {}
    seen: Set[int] = set()

    def walk(node: Event) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, IntermediateEvent):
            for child in _children(node):
                walk(child)
        else:
            leaves[id(node)] = node

    walk(event)
    return leaves


def find_modules(tree: FaultTree) -> List[Module]:
    """Return all modules of the tree, largest first.

    The top event is excluded (it is trivially a module).  An
    intermediate event is reported when every root-path to each of its
    leaves passes through it.
    """
    global_paths = _path_counts(tree.top)
    modules: List[Module] = []
    for event in tree.iter_events():
        if not isinstance(event, IntermediateEvent) or event is tree.top:
            continue
        local_paths = _path_counts(event)
        p_event = global_paths.get(id(event), 0)
        is_module = True
        for leaf_id in _leaves_below(event):
            total = global_paths.get(leaf_id, 0)
            within = local_paths.get(leaf_id, 0)
            if total != p_event * within:
                is_module = False
                break
        if is_module:
            names = frozenset(l.name
                              for l in _leaves_below(event).values())
            modules.append(Module(root=event.name, leaves=names))
    modules.sort(key=lambda m: (-m.size, m.root))
    return modules


def modular_probability(tree: FaultTree,
                        probabilities: Optional[Dict[str, float]] = None,
                        method: str = "exact") -> float:
    """Quantify the tree by quantifying maximal modules independently.

    Each chosen module is quantified on its own subtree and replaced by
    an equivalent single leaf carrying the module's probability; the
    reduced tree is then quantified.  For trees with independent leaves
    this equals direct quantification (tested) while keeping every BDD
    small.

    Note: module substitution preserves *probability* for independent
    leaves under the exact method; with ``rare_event`` it composes the
    same approximation the paper's Eq. 1 makes.
    """
    probs = probability_map(tree, probabilities)
    modules = find_modules(tree)
    chosen: List[Module] = []
    used: Set[str] = set()
    for module in modules:
        if module.leaves & used:
            continue
        if module.size < 2:
            continue   # folding single leaves buys nothing
        chosen.append(module)
        used |= module.leaves

    replacements: Dict[str, float] = {}
    for module in chosen:
        root_event = tree.event(module.root)
        assert isinstance(root_event, IntermediateEvent)
        sub = FaultTree(root_event, name=module.root)
        replacements[module.root] = hazard_probability(sub, probs,
                                                       method=method)

    if not replacements:
        return hazard_probability(tree, probs, method=method)

    rebuilt: Dict[int, Event] = {}

    def clone(event: Event) -> Event:
        key = id(event)
        if key in rebuilt:
            return rebuilt[key]
        if isinstance(event, IntermediateEvent) and \
                event.name in replacements:
            result: Event = PrimaryFailure(
                event.name, probability=replacements[event.name],
                description=f"module {event.name} folded")
        elif isinstance(event, IntermediateEvent):
            gate = event.gate
            new_gate = Gate(gate.gate_type,
                            [clone(c) for c in gate.inputs],
                            k=gate.k, condition=gate.condition)
            result = IntermediateEvent(event.name, new_gate,
                                       event.description)
        else:
            result = event
        rebuilt[key] = result
        return result

    top = clone(tree.top)
    assert isinstance(top, IntermediateEvent)
    reduced = FaultTree(top, name=tree.name)
    remaining = dict(probs)
    remaining.update(replacements)
    return hazard_probability(reduced, remaining, method=method)
