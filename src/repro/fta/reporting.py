"""Quantitative FTA reports: ranked cut sets and analysis summaries.

The practitioner-facing layer of the substrate: given a fault tree and
leaf probabilities, produce the artifacts a safety case actually cites —
the top minimal cut sets with their (constrained) probabilities and
contribution percentages, the single-point-of-failure list, and the
importance ranking — as data (for programmatic use) and as rendered text
(for reports).  This is the paper's "intuitive tool support" (Sect. V)
in its minimum viable form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import QuantificationError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.cutsets import CutSet, mocus
from repro.fta.importance import ImportanceResult, importance_measures
from repro.fta.quantify import (
    constrained_cut_set_probability,
    hazard_probability,
    probability_map,
)
from repro.fta.tree import FaultTree


@dataclass(frozen=True)
class RankedCutSet:
    """One cut set with its probability and share of the hazard."""

    cut_set: CutSet
    probability: float
    contribution: float      # fraction of the rare-event hazard total


@dataclass(frozen=True)
class AnalysisReport:
    """The complete quantitative-FTA result for one hazard."""

    hazard: str
    rare_event_probability: float
    exact_probability: float
    ranked_cut_sets: List[RankedCutSet]
    single_points_of_failure: List[CutSet]
    importance: List[ImportanceResult]

    @property
    def dominant(self) -> RankedCutSet:
        """The highest-probability minimal cut set."""
        return self.ranked_cut_sets[0]

    def to_text(self, top: int = 10) -> str:
        """Render the report as aligned text (top ``top`` cut sets)."""
        from repro.viz import format_table
        lines = [
            f"Quantitative FTA report — hazard {self.hazard!r}",
            f"  P(H) rare-event (Eq. 1/2): "
            f"{self.rare_event_probability:.6e}",
            f"  P(H) exact (BDD)         : {self.exact_probability:.6e}",
            f"  single points of failure : "
            f"{len(self.single_points_of_failure)}",
            "",
            format_table(
                ["minimal cut set", "probability", "contribution"],
                [[str(r.cut_set), f"{r.probability:.3e}",
                  f"{r.contribution * 100:.1f} %"]
                 for r in self.ranked_cut_sets[:top]],
                title="Top minimal cut sets"),
            "",
            format_table(
                ["event", "Birnbaum", "Fussell-Vesely", "criticality"],
                [[r.event, f"{r.birnbaum:.3e}",
                  f"{r.fussell_vesely:.3f}", f"{r.criticality:.3f}"]
                 for r in self.importance[:top]],
                title="Importance ranking"),
        ]
        return "\n".join(lines)


def analyze(tree: FaultTree,
            probabilities: Optional[Dict[str, float]] = None,
            policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT
            ) -> AnalysisReport:
    """Run the full quantitative analysis of one fault tree.

    Combines cut set ranking (rare-event with constraint probabilities),
    the exact BDD probability, and importance measures into one report.
    """
    probs = probability_map(tree, probabilities)
    cut_sets = mocus(tree)
    if not cut_sets:
        raise QuantificationError(
            f"tree {tree.name!r} has no cut sets; nothing to analyze")
    per_cut = [(cs, constrained_cut_set_probability(cs, probs, policy))
               for cs in cut_sets]
    total = sum(p for _cs, p in per_cut)
    ranked = sorted(
        (RankedCutSet(cs, p, p / total if total > 0.0 else 0.0)
         for cs, p in per_cut),
        key=lambda r: r.probability, reverse=True)
    return AnalysisReport(
        hazard=tree.top.name,
        rare_event_probability=min(1.0, total),
        exact_probability=hazard_probability(tree, probs, method="exact"),
        ranked_cut_sets=ranked,
        single_points_of_failure=cut_sets.single_points_of_failure,
        importance=importance_measures(tree, probs))
