"""Minimal cut set computation (MOCUS) and cut set algebra.

A cut set (paper Sect. II-B) is a set of primary failures that together
form a threat; a *minimal* cut set cannot be reduced without losing that
property.  This module derives minimal cut sets from the tree structure by
the classic MOCUS top-down expansion with absorption, and additionally
carries each cut set's INHIBIT conditions along the paths from the hazard
to the cut set's elements — exactly the information the paper's constraint
probabilities (Sect. II-D.1) quantify.

For non-coherent trees (XOR/NOT) use the BDD route
(:func:`repro.fta.quantify.to_bdd` + :func:`repro.bdd.minimal_cut_sets`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import FaultTreeError
from repro.fta.events import (
    Condition,
    Event,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree


@dataclass(frozen=True, order=True)
class CutSet:
    """A cut set: primary failures plus the conditions guarding them.

    ``failures`` are primary-failure names; ``conditions`` are the INHIBIT
    conditions collected on the paths from the hazard down to those
    failures.  The empty cut set (no failures) means the hazard is certain
    whenever its conditions hold.
    """

    failures: FrozenSet[str]
    conditions: FrozenSet[str] = frozenset()

    @property
    def order(self) -> int:
        """Number of primary failures (the cut set's order)."""
        return len(self.failures)

    @property
    def is_single_point(self) -> bool:
        """True when one primary failure alone causes the hazard."""
        return self.order == 1

    def subsumes(self, other: "CutSet") -> bool:
        """True when this cut set implies ``other`` is redundant.

        ``self`` subsumes ``other`` when its failures are a subset of the
        other's and it is not *harder* to trigger: its conditions must also
        be a subset (fewer environmental requirements).
        """
        return (self.failures <= other.failures
                and self.conditions <= other.conditions)

    def __str__(self) -> str:
        parts = "{" + ", ".join(sorted(self.failures)) + "}"
        if self.conditions:
            parts += " | " + ", ".join(sorted(self.conditions))
        return parts


class CutSetCollection:
    """An ordered, minimized collection of cut sets for one hazard."""

    def __init__(self, hazard_name: str, cut_sets: Iterable[CutSet]):
        self.hazard_name = hazard_name
        self.cut_sets: List[CutSet] = sorted(
            minimize(list(cut_sets)),
            key=lambda cs: (cs.order, sorted(cs.failures),
                            sorted(cs.conditions)))

    def __iter__(self) -> Iterator[CutSet]:
        return iter(self.cut_sets)

    def __len__(self) -> int:
        return len(self.cut_sets)

    def __getitem__(self, index: int) -> CutSet:
        return self.cut_sets[index]

    @property
    def single_points_of_failure(self) -> List[CutSet]:
        """All order-1 cut sets — the paper's key qualitative finding."""
        return [cs for cs in self.cut_sets if cs.is_single_point]

    def of_order(self, order: int) -> List[CutSet]:
        """All cut sets with exactly ``order`` primary failures."""
        return [cs for cs in self.cut_sets if cs.order == order]

    def involving(self, failure_name: str) -> List[CutSet]:
        """All cut sets containing the given primary failure."""
        return [cs for cs in self.cut_sets if failure_name in cs.failures]

    def failure_names(self) -> Set[str]:
        """Union of all primary failure names across the collection."""
        names: Set[str] = set()
        for cs in self.cut_sets:
            names |= cs.failures
        return names

    def __repr__(self) -> str:
        return (f"CutSetCollection({self.hazard_name!r}, "
                f"{len(self.cut_sets)} minimal cut sets)")


def minimize(cut_sets: List[CutSet]) -> List[CutSet]:
    """Remove subsumed cut sets (absorption law).

    A cut set is dropped when another cut set subsumes it — fewer failures
    and no additional conditions.  Exact duplicates collapse too.
    """
    unique = list(dict.fromkeys(cut_sets))
    unique.sort(key=lambda cs: (cs.order, len(cs.conditions)))
    kept: List[CutSet] = []
    for candidate in unique:
        if not any(existing.subsumes(candidate) and existing != candidate
                   for existing in kept):
            kept.append(candidate)
    return kept


def mocus(tree: FaultTree, max_order: int = 0) -> CutSetCollection:
    """Compute the minimal cut sets of a coherent fault tree.

    Parameters
    ----------
    tree:
        The fault tree; XOR/NOT gates are rejected (non-coherent).
    max_order:
        If positive, cut sets with more than ``max_order`` failures are
        pruned during expansion (standard MOCUS truncation for large
        trees).  ``0`` keeps everything.

    Returns
    -------
    CutSetCollection
        Minimized, each cut set annotated with its INHIBIT conditions.
    """
    if not tree.is_coherent:
        raise FaultTreeError(
            f"tree {tree.name!r} contains XOR/NOT gates; MOCUS requires a "
            "coherent tree — use the BDD analysis instead")

    memo: Dict[int, List[CutSet]] = {}

    def expand(event: Event) -> List[CutSet]:
        key = id(event)
        if key in memo:
            return memo[key]
        if isinstance(event, PrimaryFailure):
            result = [CutSet(frozenset([event.name]))]
        elif isinstance(event, HouseEvent):
            # True house event: certain — contributes the empty cut set.
            # False house event: impossible — contributes nothing.
            result = [CutSet(frozenset())] if event.state else []
        elif isinstance(event, Condition):
            raise FaultTreeError(
                f"condition {event.name!r} used outside an INHIBIT gate")
        elif isinstance(event, IntermediateEvent):
            result = expand_gate(event)
        else:
            raise FaultTreeError(
                f"cannot expand event of type {type(event).__name__}")
        result = _truncate(minimize(result), max_order)
        memo[key] = result
        return result

    def expand_gate(event: IntermediateEvent) -> List[CutSet]:
        gate = event.gate
        children = [expand(child) for child in gate.inputs]
        gt = gate.gate_type
        if gt is GateType.OR:
            return [cs for group in children for cs in group]
        if gt is GateType.AND:
            return _conjoin_groups(children, max_order)
        if gt is GateType.KOFN:
            combined: List[CutSet] = []
            for combo in itertools.combinations(children, gate.k):
                combined.extend(_conjoin_groups(list(combo), max_order))
            return combined
        if gt is GateType.INHIBIT:
            condition = gate.condition
            return [
                CutSet(cs.failures, cs.conditions | {condition.name})
                for cs in children[0]
            ]
        raise FaultTreeError(f"unsupported gate type {gt!r} in MOCUS")

    return CutSetCollection(tree.top.name, expand(tree.top))


def _conjoin_groups(groups: List[List[CutSet]],
                    max_order: int) -> List[CutSet]:
    """Cross-product combination of cut set groups under an AND gate."""
    current = [CutSet(frozenset())]
    for group in groups:
        combined: List[CutSet] = []
        for left, right in itertools.product(current, group):
            merged = CutSet(left.failures | right.failures,
                            left.conditions | right.conditions)
            if max_order and merged.order > max_order:
                continue
            combined.append(merged)
        current = minimize(combined)
        if not current:
            return []
    return current


def _truncate(cut_sets: List[CutSet], max_order: int) -> List[CutSet]:
    if not max_order:
        return cut_sets
    return [cs for cs in cut_sets if cs.order <= max_order]


def cut_sets_agree(a: Iterable[Tuple[str, ...]],
                   b: Iterable[Tuple[str, ...]]) -> bool:
    """Compare two cut set families ignoring order and conditions.

    Helper for cross-checking MOCUS against the BDD extraction, which
    reports plain frozensets of failure names.
    """
    to_sets = lambda fam: {frozenset(x) for x in fam}  # noqa: E731
    return to_sets(a) == to_sets(b)
