"""Minimal cut set computation (MOCUS) and cut set algebra.

A cut set (paper Sect. II-B) is a set of primary failures that together
form a threat; a *minimal* cut set cannot be reduced without losing that
property.  This module derives minimal cut sets from the tree structure by
the classic MOCUS top-down expansion with absorption, and additionally
carries each cut set's INHIBIT conditions along the paths from the hazard
to the cut set's elements — exactly the information the paper's constraint
probabilities (Sect. II-D.1) quantify.

Internally the expansion works on integer *bitmasks*: every primary
failure is mapped to a bit position (first-visit order) and every INHIBIT
condition to a bit in a parallel condition mask, so a cut set is one
``(failures, conditions)`` pair of ints, subsumption is two ``a & b == a``
tests, and absorption groups candidates by popcount so only cut sets with
no more failures are ever compared.  The public boundary is unchanged:
:class:`CutSet` / :class:`CutSetCollection` still expose frozensets of
names, and :func:`minimize` accepts and returns :class:`CutSet` lists.

For non-coherent trees (XOR/NOT) use the BDD route
(:func:`repro.fta.quantify.to_bdd` + :func:`repro.bdd.minimal_cut_sets`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import FaultTreeError
from repro.fta.events import (
    Condition,
    Event,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree


try:
    _popcount = int.bit_count  # Python >= 3.10: one C call
except AttributeError:  # pragma: no cover - Python 3.9 fallback
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


#: A cut set in mask form: (failure bitmask, condition bitmask).
_MaskPair = Tuple[int, int]


@dataclass(frozen=True, order=True)
class CutSet:
    """A cut set: primary failures plus the conditions guarding them.

    ``failures`` are primary-failure names; ``conditions`` are the INHIBIT
    conditions collected on the paths from the hazard down to those
    failures.  The empty cut set (no failures) means the hazard is certain
    whenever its conditions hold.
    """

    failures: FrozenSet[str]
    conditions: FrozenSet[str] = frozenset()

    @property
    def order(self) -> int:
        """Number of primary failures (the cut set's order)."""
        return len(self.failures)

    @property
    def is_single_point(self) -> bool:
        """True when one primary failure alone causes the hazard."""
        return self.order == 1

    def subsumes(self, other: "CutSet") -> bool:
        """True when this cut set implies ``other`` is redundant.

        ``self`` subsumes ``other`` when its failures are a subset of the
        other's and it is not *harder* to trigger: its conditions must also
        be a subset (fewer environmental requirements).
        """
        return (self.failures <= other.failures
                and self.conditions <= other.conditions)

    def __str__(self) -> str:
        parts = "{" + ", ".join(sorted(self.failures)) + "}"
        if self.conditions:
            parts += " | " + ", ".join(sorted(self.conditions))
        return parts


class CutSetCollection:
    """An ordered, minimized collection of cut sets for one hazard."""

    def __init__(self, hazard_name: str, cut_sets: Iterable[CutSet]):
        self.hazard_name = hazard_name
        self.cut_sets: List[CutSet] = sorted(
            minimize(list(cut_sets)),
            key=lambda cs: (cs.order, sorted(cs.failures),
                            sorted(cs.conditions)))

    def __iter__(self) -> Iterator[CutSet]:
        return iter(self.cut_sets)

    def __len__(self) -> int:
        return len(self.cut_sets)

    def __getitem__(self, index: int) -> CutSet:
        return self.cut_sets[index]

    @property
    def single_points_of_failure(self) -> List[CutSet]:
        """All order-1 cut sets — the paper's key qualitative finding."""
        return [cs for cs in self.cut_sets if cs.is_single_point]

    def of_order(self, order: int) -> List[CutSet]:
        """All cut sets with exactly ``order`` primary failures."""
        return [cs for cs in self.cut_sets if cs.order == order]

    def involving(self, failure_name: str) -> List[CutSet]:
        """All cut sets containing the given primary failure."""
        return [cs for cs in self.cut_sets if failure_name in cs.failures]

    def failure_names(self) -> Set[str]:
        """Union of all primary failure names across the collection."""
        names: Set[str] = set()
        for cs in self.cut_sets:
            names |= cs.failures
        return names

    def __repr__(self) -> str:
        return (f"CutSetCollection({self.hazard_name!r}, "
                f"{len(self.cut_sets)} minimal cut sets)")

    @classmethod
    def _from_minimal(cls, hazard_name: str,
                      cut_sets: Iterable[CutSet]) -> "CutSetCollection":
        """Build a collection from cut sets that are already minimal
        (skips the constructor's re-minimization); internal fast path
        for :func:`mocus`."""
        self = cls.__new__(cls)
        self.hazard_name = hazard_name
        self.cut_sets = sorted(
            cut_sets,
            key=lambda cs: (cs.order, sorted(cs.failures),
                            sorted(cs.conditions)))
        return self


def _minimize_pairs(pairs: List[_MaskPair]) -> List[_MaskPair]:
    """Absorption over mask pairs, ordered by failure popcount.

    A pair is dropped when an already-kept pair has a subset of its
    failures *and* a subset of its conditions.  Exact duplicates collapse
    in the dedup step, so no equality test is needed in the loop, and the
    ascending popcount order guarantees kept pairs never have more
    failures than the candidate — subsumption is one-directional.
    """
    unique = list(dict.fromkeys(pairs))
    if len(unique) <= 1:
        return unique
    unique.sort(key=lambda p: (_popcount(p[0]), _popcount(p[1])))
    kept: List[_MaskPair] = []
    for pair in unique:
        failures, conditions = pair
        for kf, kc in kept:
            # kept is popcount-sorted, so kf never has more bits than
            # failures; the subset tests alone decide absorption.
            if kf & failures == kf and kc & conditions == kc:
                break
        else:
            kept.append(pair)
    return kept


def minimize(cut_sets: List[CutSet]) -> List[CutSet]:
    """Remove subsumed cut sets (absorption law).

    A cut set is dropped when another cut set subsumes it — fewer failures
    and no additional conditions.  Exact duplicates collapse too.  The
    comparison runs on bitmasks over the names appearing in the input.
    """
    unique = list(dict.fromkeys(cut_sets))
    if len(unique) <= 1:
        return unique
    failure_bit: Dict[str, int] = {}
    condition_bit: Dict[str, int] = {}
    pairs: List[Tuple[int, int, CutSet]] = []
    for cs in unique:
        fmask = 0
        for name in cs.failures:
            fmask |= failure_bit.setdefault(name, 1 << len(failure_bit))
        cmask = 0
        for name in cs.conditions:
            cmask |= condition_bit.setdefault(name,
                                              1 << len(condition_bit))
        pairs.append((fmask, cmask, cs))
    pairs.sort(key=lambda p: (p[2].order, len(p[2].conditions)))
    kept: List[CutSet] = []
    kept_masks: List[Tuple[int, int]] = []
    for fmask, cmask, cs in pairs:
        for kf, kc in kept_masks:
            if kf & fmask == kf and kc & cmask == kc:
                break
        else:
            kept.append(cs)
            kept_masks.append((fmask, cmask))
    return kept


def mocus(tree: FaultTree, max_order: int = 0) -> CutSetCollection:
    """Compute the minimal cut sets of a coherent fault tree.

    Parameters
    ----------
    tree:
        The fault tree; XOR/NOT gates are rejected (non-coherent).
    max_order:
        If positive, cut sets with more than ``max_order`` failures are
        pruned during expansion (standard MOCUS truncation for large
        trees).  ``0`` keeps everything.

    Returns
    -------
    CutSetCollection
        Minimized, each cut set annotated with its INHIBIT conditions.
    """
    if not tree.is_coherent:
        raise FaultTreeError(
            f"tree {tree.name!r} contains XOR/NOT gates; MOCUS requires a "
            "coherent tree — use the BDD analysis instead")

    # Map every primary failure / condition to a bit, first-visit order.
    failure_names: List[str] = []
    condition_names: List[str] = []
    failure_bit: Dict[str, int] = {}
    condition_bit: Dict[str, int] = {}
    for event in tree.iter_events():
        if isinstance(event, PrimaryFailure):
            if event.name not in failure_bit:
                failure_bit[event.name] = 1 << len(failure_names)
                failure_names.append(event.name)
        elif isinstance(event, Condition):
            if event.name not in condition_bit:
                condition_bit[event.name] = 1 << len(condition_names)
                condition_names.append(event.name)

    memo: Dict[int, List[_MaskPair]] = {}

    def finish(pairs: List[_MaskPair]) -> List[_MaskPair]:
        return _truncate_pairs(_minimize_pairs(pairs), max_order)

    def expand_gate(event: IntermediateEvent) -> List[_MaskPair]:
        gate = event.gate
        children = [memo[id(child)] for child in gate.inputs]
        gt = gate.gate_type
        if gt is GateType.OR:
            return [pair for group in children for pair in group]
        if gt is GateType.AND:
            return _conjoin_groups(children, max_order)
        if gt is GateType.KOFN:
            combined: List[_MaskPair] = []
            for combo in itertools.combinations(children, gate.k):
                combined.extend(_conjoin_groups(list(combo), max_order))
            return combined
        if gt is GateType.INHIBIT:
            bit = condition_bit[gate.condition.name]
            return [(failures, conditions | bit)
                    for failures, conditions in children[0]]
        raise FaultTreeError(f"unsupported gate type {gt!r} in MOCUS")

    # Explicit-stack expansion (deep trees must not hit the recursion
    # limit), memoized per event for shared subtrees.
    stack: List[Tuple[Event, bool]] = [(tree.top, False)]
    while stack:
        event, ready = stack.pop()
        key = id(event)
        if key in memo:
            continue
        if isinstance(event, PrimaryFailure):
            memo[key] = finish([(failure_bit[event.name], 0)])
        elif isinstance(event, HouseEvent):
            # True house event: certain — contributes the empty cut set.
            # False house event: impossible — contributes nothing.
            memo[key] = finish([(0, 0)] if event.state else [])
        elif isinstance(event, Condition):
            raise FaultTreeError(
                f"condition {event.name!r} used outside an INHIBIT gate")
        elif isinstance(event, IntermediateEvent):
            if ready:
                memo[key] = finish(expand_gate(event))
            else:
                stack.append((event, True))
                for child in reversed(event.gate.inputs):
                    if id(child) not in memo:
                        stack.append((child, False))
        else:
            raise FaultTreeError(
                f"cannot expand event of type {type(event).__name__}")

    cut_sets = [
        CutSet(frozenset(name for i, name in enumerate(failure_names)
                         if failures >> i & 1),
               frozenset(name for i, name in enumerate(condition_names)
                         if conditions >> i & 1))
        for failures, conditions in memo[id(tree.top)]]
    # The expansion output is already minimal; skip the constructor's
    # re-minimization pass.
    return CutSetCollection._from_minimal(tree.top.name, cut_sets)


def _conjoin_groups(groups: List[List[_MaskPair]],
                    max_order: int) -> List[_MaskPair]:
    """Cross-product combination of cut set groups under an AND gate."""
    current: List[_MaskPair] = [(0, 0)]
    for group in groups:
        combined: List[_MaskPair] = []
        for left, right in itertools.product(current, group):
            failures = left[0] | right[0]
            if max_order and _popcount(failures) > max_order:
                continue
            combined.append((failures, left[1] | right[1]))
        current = _minimize_pairs(combined)
        if not current:
            return []
    return current


def _truncate_pairs(pairs: List[_MaskPair],
                    max_order: int) -> List[_MaskPair]:
    if not max_order:
        return pairs
    return [pair for pair in pairs if _popcount(pair[0]) <= max_order]


def cut_sets_agree(a: Iterable[Tuple[str, ...]],
                   b: Iterable[Tuple[str, ...]]) -> bool:
    """Compare two cut set families ignoring order and conditions.

    Helper for cross-checking MOCUS against the BDD extraction, which
    reports plain frozensets of failure names.
    """
    to_sets = lambda fam: {frozenset(x) for x in fam}  # noqa: E731
    return to_sets(a) == to_sets(b)
