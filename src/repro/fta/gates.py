"""Gate types connecting fault tree events to their immediate causes.

The paper uses AND, OR and INHIBIT gates (Fig. 1).  We additionally provide
the standard K-of-N (voting), XOR and NOT gates found in the fault tree
handbooks the paper builds on [Vesely et al.].  XOR and NOT make a tree
non-coherent; the MOCUS cut-set algorithm rejects them and analysis must go
through the exact BDD path instead.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from repro.errors import FaultTreeError
from repro.fta.events import Condition, Event


class GateType(enum.Enum):
    """The connective applied to a gate's inputs."""

    AND = "and"
    OR = "or"
    KOFN = "kofn"
    XOR = "xor"
    NOT = "not"
    INHIBIT = "inhibit"


class Gate:
    """A gate: connective + input events (+ condition / k where relevant).

    INHIBIT gates carry exactly one input (the cause) and a
    :class:`~repro.fta.events.Condition`; semantically the output occurs
    iff the cause occurs *and* the condition holds.
    """

    def __init__(self, gate_type: GateType, inputs: Sequence[Event],
                 k: Optional[int] = None,
                 condition: Optional[Condition] = None):
        if not isinstance(gate_type, GateType):
            raise FaultTreeError(f"gate_type must be a GateType, "
                                 f"got {gate_type!r}")
        inputs = list(inputs)
        if not inputs:
            raise FaultTreeError(f"{gate_type.value}-gate needs at least "
                                 "one input")
        for event in inputs:
            if not isinstance(event, Event):
                raise FaultTreeError(
                    f"gate inputs must be events, got {type(event).__name__}")
            if isinstance(event, Condition):
                raise FaultTreeError(
                    f"condition {event.name!r} can only be attached to an "
                    "INHIBIT gate, not used as a gate input")
        self.gate_type = gate_type
        self.inputs: List[Event] = inputs
        self.k = k
        self.condition = condition
        self._validate()

    def _validate(self) -> None:
        gt = self.gate_type
        if gt is GateType.KOFN:
            if self.k is None:
                raise FaultTreeError("K-of-N gate requires k")
            if not 1 <= self.k <= len(self.inputs):
                raise FaultTreeError(
                    f"K-of-N gate requires 1 <= k <= {len(self.inputs)}, "
                    f"got k={self.k}")
        elif self.k is not None:
            raise FaultTreeError(f"k is only valid for K-of-N gates, "
                                 f"not {gt.value}")
        if gt is GateType.NOT and len(self.inputs) != 1:
            raise FaultTreeError("NOT gate requires exactly one input")
        if gt is GateType.INHIBIT:
            if len(self.inputs) != 1:
                raise FaultTreeError(
                    "INHIBIT gate requires exactly one cause input")
            if not isinstance(self.condition, Condition):
                raise FaultTreeError(
                    "INHIBIT gate requires a Condition event")
        elif self.condition is not None:
            raise FaultTreeError(
                f"condition is only valid for INHIBIT gates, not {gt.value}")
        if gt is GateType.XOR and len(self.inputs) < 2:
            raise FaultTreeError("XOR gate requires at least two inputs")

    def __repr__(self) -> str:
        extra = ""
        if self.gate_type is GateType.KOFN:
            extra = f", k={self.k}"
        if self.gate_type is GateType.INHIBIT:
            extra = f", condition={self.condition.name!r}"
        names = ", ".join(e.name for e in self.inputs)
        return f"Gate({self.gate_type.value}, [{names}]{extra})"


def and_gate(*inputs: Event) -> Gate:
    """Convenience constructor for an AND gate."""
    return Gate(GateType.AND, inputs)


def or_gate(*inputs: Event) -> Gate:
    """Convenience constructor for an OR gate."""
    return Gate(GateType.OR, inputs)


def kofn_gate(k: int, *inputs: Event) -> Gate:
    """Convenience constructor for a K-of-N voting gate."""
    return Gate(GateType.KOFN, inputs, k=k)


def xor_gate(*inputs: Event) -> Gate:
    """Convenience constructor for an XOR gate (non-coherent)."""
    return Gate(GateType.XOR, inputs)


def not_gate(event: Event) -> Gate:
    """Convenience constructor for a NOT gate (non-coherent)."""
    return Gate(GateType.NOT, [event])


def inhibit_gate(cause: Event, condition: Condition) -> Gate:
    """Convenience constructor for an INHIBIT gate."""
    return Gate(GateType.INHIBIT, [cause], condition=condition)
