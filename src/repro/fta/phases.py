"""Phased-mission analysis: different trees/probabilities per phase.

Systems rarely face one static environment: the Elbtunnel sees day and
night traffic, an aircraft sees taxi/climb/cruise, a plant sees startup
and steady state.  A *phased mission* splits the horizon into phases,
each with its own fault tree (the logic may change: sensors disabled at
night) and its own leaf probabilities (rates scale with traffic).

Under the standard phased-mission assumptions — phase hazards
independent once per-phase probabilities are given, and the mission
fails when any phase's hazard occurs — the mission hazard probability is

``P(mission) = 1 - prod_k (1 - P_k(H))``

and each phase's *contribution* is its share of the rare-event sum.
This is the paper's environment-scaling analysis (Sect. IV-C.2)
systematized: instead of one "increased traffic" what-if, a weighted
mission profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import QuantificationError
from repro.fta.quantify import hazard_probability
from repro.fta.tree import FaultTree


@dataclass(frozen=True)
class MissionPhase:
    """One phase: name, duration weight, tree and leaf probabilities."""

    name: str
    tree: FaultTree
    duration: float
    probabilities: Optional[Dict[str, float]] = None

    def __post_init__(self):
        if self.duration <= 0.0:
            raise QuantificationError(
                f"phase {self.name!r} duration must be > 0, "
                f"got {self.duration}")


@dataclass(frozen=True)
class PhaseResult:
    """Per-phase quantification outcome."""

    name: str
    duration: float
    probability: float
    contribution: float


@dataclass(frozen=True)
class MissionResult:
    """The phased-mission quantification."""

    probability: float
    phases: Tuple[PhaseResult, ...]

    @property
    def dominant_phase(self) -> PhaseResult:
        """The phase contributing the most hazard probability."""
        return max(self.phases, key=lambda p: p.probability)


def evaluate_mission(phases: List[MissionPhase],
                     method: str = "exact") -> MissionResult:
    """Quantify a phased mission.

    Each phase is quantified on its own tree/probabilities; the mission
    hazard probability combines them as independent survival factors.
    """
    if not phases:
        raise QuantificationError("mission needs at least one phase")
    names = [p.name for p in phases]
    if len(set(names)) != len(names):
        raise QuantificationError(f"duplicate phase names: {names}")

    per_phase: List[Tuple[MissionPhase, float]] = []
    for phase in phases:
        value = hazard_probability(phase.tree, phase.probabilities,
                                   method=method)
        per_phase.append((phase, value))

    survival = 1.0
    for _phase, value in per_phase:
        survival *= 1.0 - value
    total = sum(value for _phase, value in per_phase)
    results = tuple(
        PhaseResult(name=phase.name, duration=phase.duration,
                    probability=value,
                    contribution=value / total if total > 0.0 else 0.0)
        for phase, value in per_phase)
    return MissionResult(probability=1.0 - survival, phases=results)


def scale_exposure_probabilities(
        base_probabilities: Dict[str, float],
        duration_fraction: float) -> Dict[str, float]:
    """Rescale exposure-type probabilities to a phase's duration.

    For probabilities of the form ``1 - exp(-rate * T)`` evaluated for a
    full mission of length ``T``, the value over a phase of length
    ``f * T`` is ``1 - (1 - p) ** f`` — exact for Poisson exposure
    models, a convenient approximation otherwise.
    """
    if not 0.0 < duration_fraction <= 1.0:
        raise QuantificationError(
            f"duration fraction must be in (0, 1], got {duration_fraction}")
    scaled = {}
    for name, p in base_probabilities.items():
        if not 0.0 <= p <= 1.0:
            raise QuantificationError(
                f"probability of {name!r} must be in [0, 1], got {p}")
        if p >= 1.0:
            scaled[name] = 1.0
        else:
            scaled[name] = 1.0 - (1.0 - p) ** duration_fraction
    return scaled
