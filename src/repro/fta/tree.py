"""The :class:`FaultTree` container: validation, traversal, lookups.

A fault tree is rooted at a hazard (the paper: "the hazard or top event is
always the root").  Shared subtrees are allowed — structurally the tree is
a DAG, which is the standard generalization — but cycles, duplicate names
on distinct objects, and malformed gates are rejected at construction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.errors import ValidationError
from repro.fta.events import (
    Condition,
    Event,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import Gate, GateType


class FaultTree:
    """An immutable, validated fault tree for one hazard.

    Parameters
    ----------
    top:
        The hazard (top event).  Any :class:`IntermediateEvent` is accepted
        so subtrees can be analyzed standalone.
    name:
        Optional tree name; defaults to the top event's name.
    """

    def __init__(self, top: IntermediateEvent, name: Optional[str] = None):
        if not isinstance(top, IntermediateEvent):
            raise ValidationError(
                "the top event must be an IntermediateEvent or Hazard, "
                f"got {type(top).__name__}")
        self.top = top
        self.name = name if name is not None else top.name
        self._events: Dict[str, Event] = {}
        # Structural content hash, filled lazily by fingerprint(); trees
        # are immutable after validation so one computation suffices.
        self._fingerprint: Optional[str] = None
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        # Depth-first walk detecting cycles (grey set) and name clashes.
        # Runs an explicit stack so arbitrarily deep trees (thousands of
        # chained gates) validate without hitting the recursion limit.
        grey: Set[int] = set()
        done: Set[int] = set()

        def register(event: Event) -> None:
            known = self._events.get(event.name)
            if known is not None and known is not event:
                raise ValidationError(
                    f"two distinct events share the name {event.name!r}")
            self._events[event.name] = event

        stack: List[tuple] = [(self.top, False)]
        while stack:
            event, leaving = stack.pop()
            key = id(event)
            if leaving:
                grey.discard(key)
                done.add(key)
                continue
            if key in grey:
                raise ValidationError(
                    f"cycle detected through event {event.name!r}")
            if key in done:
                continue
            register(event)
            grey.add(key)
            stack.append((event, True))
            if isinstance(event, IntermediateEvent):
                gate = event.gate
                if gate.gate_type is GateType.INHIBIT:
                    register(gate.condition)
                for child in reversed(gate.inputs):
                    stack.append((child, False))

    # ------------------------------------------------------------------
    # Traversal & queries
    # ------------------------------------------------------------------
    def iter_events(self) -> Iterator[Event]:
        """Yield every event exactly once (pre-order from the top)."""
        seen: Set[int] = set()
        stack: List[Event] = [self.top]
        while stack:
            event = stack.pop()
            if id(event) in seen:
                continue
            seen.add(id(event))
            yield event
            if isinstance(event, IntermediateEvent):
                gate = event.gate
                if gate.gate_type is GateType.INHIBIT:
                    stack.append(gate.condition)
                stack.extend(reversed(gate.inputs))

    def fingerprint(self) -> str:
        """Structural content hash of this tree (order-independent).

        Two trees describing the same hazard structure — same events,
        gates, probabilities and conditions, regardless of construction
        order — share a fingerprint; any structural change produces a new
        one.  Used by :mod:`repro.engine` as the cache-key ingredient for
        every job over this tree.
        """
        from repro.engine.fingerprint import tree_fingerprint
        return tree_fingerprint(self)

    def event(self, name: str) -> Event:
        """Return the event called ``name`` or raise ``ValidationError``."""
        try:
            return self._events[name]
        except KeyError:
            raise ValidationError(
                f"no event named {name!r} in tree {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._events

    @property
    def primary_failures(self) -> List[PrimaryFailure]:
        """All primary failures, in first-visit order."""
        return [e for e in self.iter_events()
                if isinstance(e, PrimaryFailure)]

    @property
    def conditions(self) -> List[Condition]:
        """All INHIBIT conditions, in first-visit order."""
        return [e for e in self.iter_events() if isinstance(e, Condition)]

    @property
    def house_events(self) -> List[HouseEvent]:
        """All house events, in first-visit order."""
        return [e for e in self.iter_events() if isinstance(e, HouseEvent)]

    @property
    def intermediate_events(self) -> List[IntermediateEvent]:
        """All intermediate events (the hazard included)."""
        return [e for e in self.iter_events()
                if isinstance(e, IntermediateEvent)]

    @property
    def gates(self) -> List[Gate]:
        """All gates, one per intermediate event."""
        return [e.gate for e in self.intermediate_events]

    @property
    def is_coherent(self) -> bool:
        """True when no gate is XOR or NOT (monotone structure function)."""
        return all(g.gate_type not in (GateType.XOR, GateType.NOT)
                   for g in self.gates)

    def depth(self) -> int:
        """Longest path length (in gates) from the top to any leaf."""

        memo: Dict[int, int] = {}

        def walk(event: Event) -> int:
            if not isinstance(event, IntermediateEvent):
                return 0
            key = id(event)
            if key in memo:
                return memo[key]
            # Temporarily mark to keep recursion bounded on DAGs; cycles
            # are impossible post-validation.
            best = 1 + max(walk(child) for child in event.gate.inputs)
            memo[key] = best
            return best

        return walk(self.top)

    def evaluate(self, states: Dict[str, bool]) -> bool:
        """Evaluate the structure function for a full leaf assignment.

        ``states`` maps primary failure / condition names to booleans;
        house events use their built-in state unless overridden.
        """
        memo: Dict[int, bool] = {}

        def value_of(event: Event) -> bool:
            key = id(event)
            if key in memo:
                return memo[key]
            if isinstance(event, IntermediateEvent):
                result = gate_value(event.gate)
            elif isinstance(event, HouseEvent):
                result = states.get(event.name, event.state)
            else:
                if event.name not in states:
                    raise ValidationError(
                        f"assignment missing leaf {event.name!r}")
                result = bool(states[event.name])
            memo[key] = result
            return result

        def gate_value(gate: Gate) -> bool:
            values = [value_of(child) for child in gate.inputs]
            gt = gate.gate_type
            if gt is GateType.AND:
                return all(values)
            if gt is GateType.OR:
                return any(values)
            if gt is GateType.KOFN:
                return sum(values) >= gate.k
            if gt is GateType.XOR:
                return sum(values) % 2 == 1
            if gt is GateType.NOT:
                return not values[0]
            if gt is GateType.INHIBIT:
                cond = gate.condition
                cond_value = states.get(cond.name)
                if cond_value is None:
                    raise ValidationError(
                        f"assignment missing condition {cond.name!r}")
                return values[0] and bool(cond_value)
            raise ValidationError(f"unknown gate type {gt!r}")

        return value_of(self.top)

    def __repr__(self) -> str:
        return (f"FaultTree({self.name!r}, "
                f"{len(self.primary_failures)} primary failures, "
                f"{len(self.gates)} gates)")
