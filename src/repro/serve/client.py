"""Stdlib HTTP client for the risk-analysis service.

A thin, dependency-free wrapper over :mod:`http.client` used by the
test suite, the load benchmark and the CI smoke job — and a reference
for talking to the server from any language: every method maps to one
endpoint, streaming submissions iterate the NDJSON events as they
arrive.

The client is hardened against an unreliable server the same way the
server is hardened against unreliable infrastructure
(``docs/resilience.md``):

* Connection failures are retried within a bounded
  :class:`~repro.resilience.RetryPolicy` budget (capped, jittered
  backoff) and surface as a typed
  :class:`~repro.errors.ServeUnavailableError` — never a raw
  ``OSError`` — once the budget is spent.
* A saturated server's ``429`` is retried up to ``busy_retries``
  times, honoring its ``Retry-After`` hint (capped by
  ``max_busy_wait``).
* A small :class:`~repro.resilience.CircuitBreaker` stops a client in
  a tight loop from hammering a dead server.
* :meth:`ServeClient.results` verifies the stream it collected (a
  ``done`` summary, zero failures, every result present) and replays
  the submission once when the stream was cut or corrupted mid-flight
  — safe because jobs are content-addressed, so completed work replays
  as cache hits.
* Every request carries the client's timeout as ``X-Repro-Timeout``,
  which the server propagates into its queue and compute waits — work
  is never held alive for a client that stopped waiting.

Each :class:`ServeClient` owns one keep-alive connection and is *not*
thread-safe; concurrent load tests create one client per thread.
"""

from __future__ import annotations

import json
import socket
import time
from http.client import HTTPConnection, HTTPException
from typing import (Any, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from repro.errors import ServeError, ServeUnavailableError
from repro.resilience import CircuitBreaker, RetryPolicy

#: A submission body: one job spec, a list of specs, or {"jobs": [...]}.
JobPayload = Union[Dict[str, Any], Sequence[Dict[str, Any]]]

#: Connection-level failures worth retrying on a fresh socket.
_CONNECT_FAILURES = (ConnectionError, HTTPException, OSError)


def _count_jobs(payload: JobPayload) -> int:
    """How many job specs a submission body carries (for stream
    verification); 0 when the shape is not recognized."""
    if isinstance(payload, dict):
        jobs = payload.get("jobs")
        if isinstance(jobs, (list, tuple)):
            return len(jobs)
        return 1
    if isinstance(payload, (list, tuple)):
        return len(payload)
    return 0


class ServeClient:
    """Client for one :class:`~repro.serve.server.RiskServer`.

    Parameters
    ----------
    host, port:
        Server address (e.g. ``server.host``/``server.port`` of an
        in-process :class:`~repro.serve.server.RiskServer`).
    timeout:
        Socket timeout in seconds for connect and reads; also sent to
        the server as the request's ``X-Repro-Timeout`` deadline.
    retry:
        Backoff policy for connection failures (default: 3 attempts,
        capped jittered exponential backoff).
    busy_retries:
        How many times a ``429`` (saturated or draining server) is
        retried after honoring its ``Retry-After`` hint.  0 disables
        busy retries (the 429 surfaces immediately).
    max_busy_wait:
        Cap in seconds on any single ``Retry-After`` sleep.
    breaker:
        Circuit breaker guarding connection attempts; pass a shared
        instance to coordinate several clients, or ``None`` for a
        per-client default.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 60.0,
                 retry: Optional[RetryPolicy] = None,
                 busy_retries: int = 1,
                 max_busy_wait: float = 5.0,
                 breaker: Optional[CircuitBreaker] = None):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retry = retry if retry is not None \
            else RetryPolicy(max_attempts=3, base_delay=0.1)
        self.busy_retries = int(busy_retries)
        self.max_busy_wait = float(max_busy_wait)
        self.breaker = breaker if breaker is not None \
            else CircuitBreaker(failure_threshold=5, reset_timeout=1.0)
        #: Connection retries performed (observability for tests).
        self.retries = 0
        #: Whole-stream replays performed by :meth:`results`.
        self.replays = 0
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connection(self, fresh: bool = False) -> HTTPConnection:
        if fresh or self._conn is None:
            self.close()
            self._conn = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
            self._conn.connect()
            # Request headers and body go out as separate writes; with
            # Nagle on, the body write waits out the server's delayed
            # ACK (~40 ms) on every request.
            self._conn.sock.setsockopt(socket.IPPROTO_TCP,
                                       socket.TCP_NODELAY, 1)
        return self._conn

    def close(self) -> None:
        """Close the kept-alive connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None):
        """One request/response within the connection-retry budget.

        The first attempt reuses the kept-alive socket; every retry
        opens a fresh connection (the common failure is the server
        having closed an idle keep-alive socket).  Failures beyond the
        budget — or a tripped circuit breaker — raise
        :class:`ServeUnavailableError`.
        """
        headers = {"Accept": "application/json",
                   "X-Repro-Timeout": f"{self.timeout:g}"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            if not self.breaker.allow():
                raise ServeUnavailableError(
                    f"circuit breaker open for "
                    f"{self.host}:{self.port} (server kept failing; "
                    f"retry after {self.breaker.reset_timeout:g}s)")
            try:
                conn = self._connection(fresh=attempt > 0)
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                self.breaker.record_success()
                return response
            except _CONNECT_FAILURES as exc:
                self.close()
                self.breaker.record_failure()
                last_exc = exc
                if attempt + 1 < self.retry.max_attempts:
                    self.retries += 1
                    pause = self.retry.delay(
                        attempt, key=f"{method} {path}")
                    if pause > 0:
                        time.sleep(pause)
        raise ServeUnavailableError(
            f"cannot reach server at {self.host}:{self.port} after "
            f"{self.retry.max_attempts} attempt(s): {last_exc}"
        ) from last_exc

    def _busy_pause(self, response: Any, busy_attempt: int) -> float:
        """The sleep before retrying a 429, honoring ``Retry-After``."""
        hint = response.headers.get("Retry-After")
        try:
            pause = float(hint)
        except (TypeError, ValueError):
            pause = self.retry.delay(busy_attempt, key="busy")
        return max(0.0, min(pause, self.max_busy_wait))

    def _json(self, method: str, path: str,
              body: Optional[bytes] = None,
              expect: int = 200) -> Dict[str, Any]:
        for busy_attempt in range(self.busy_retries + 1):
            response = self._request(method, path, body)
            data = response.read()
            if response.status == 429 \
                    and busy_attempt < self.busy_retries:
                time.sleep(self._busy_pause(response, busy_attempt))
                continue
            break
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"invalid JSON from {method} {path}: {exc}",
                status=response.status) from None
        if response.status != expect:
            raise ServeError(
                payload.get("error",
                            f"{method} {path} -> {response.status}"),
                status=response.status)
        return payload

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /health``."""
        return self._json("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``."""
        return self._json("GET", "/stats")

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — one job's status record."""
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs`` — recent job records, newest first."""
        return self._json("GET", "/jobs")["jobs"]

    def stream(self, jobs: JobPayload) -> Iterator[Dict[str, Any]]:
        """``POST /jobs`` — yield each NDJSON event as it arrives.

        Raises :class:`ServeError` (with ``status``) on 400 and on a
        429 that survives the busy-retry budget; once the stream
        starts, per-job failures arrive as ``error`` events rather
        than exceptions.  A line the server corrupted mid-transmission
        raises ``json.JSONDecodeError`` from the iterator —
        :meth:`results` turns that into a verified replay.
        """
        body = json.dumps(jobs).encode("utf-8")
        for busy_attempt in range(self.busy_retries + 1):
            response = self._request("POST", "/jobs", body)
            if response.status == 200:
                break
            data = response.read()
            if response.status == 429 \
                    and busy_attempt < self.busy_retries:
                time.sleep(self._busy_pause(response, busy_attempt))
                continue
            try:
                message = json.loads(data.decode("utf-8"))["error"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError):
                message = f"POST /jobs -> {response.status}"
            raise ServeError(message, status=response.status)
        for line in response:
            line = line.strip()
            if line:
                yield json.loads(line.decode("utf-8"))

    def submit(self, jobs: JobPayload) -> List[Dict[str, Any]]:
        """``POST /jobs`` — collect the whole event stream into a list."""
        return list(self.stream(jobs))

    def results(self, jobs: JobPayload,
                replays: int = 1) -> List[Dict[str, Any]]:
        """Submit and return only the ``result`` envelopes, in job
        order; raises :class:`ServeError` on the first failed job.

        The collected stream is *verified* — a ``done`` summary
        arrived, it reports zero failures, and every expected result
        envelope is present.  When the stream was cut or corrupted
        instead (server crash mid-response, injected stream fault),
        the whole submission is replayed up to ``replays`` times:
        content-addressed caching makes the replay idempotent, so
        already-computed jobs return as cache hits and the final
        result list is identical to an undisturbed run.
        """
        expected = _count_jobs(jobs)
        failure: Optional[str] = None
        for attempt in range(max(0, replays) + 1):
            if attempt:
                self.replays += 1
                self.close()
            envelopes: List[Dict[str, Any]] = []
            done: Optional[Dict[str, Any]] = None
            try:
                for event in self.stream(jobs):
                    if event["event"] == "error":
                        raise ServeError(
                            f"job {event.get('id')} failed: "
                            f"{event['error']}")
                    if event["event"] == "result":
                        envelopes.append(event)
                    if event["event"] == "done":
                        done = event
            except ((json.JSONDecodeError, UnicodeDecodeError)
                    + _CONNECT_FAILURES) as exc:
                if isinstance(exc, ServeUnavailableError):
                    raise
                failure = f"stream failed mid-response: {exc}"
                continue
            if done is not None and not done.get("failed") \
                    and (not expected or len(envelopes) == expected):
                return envelopes
            failure = (f"incomplete stream: done="
                       f"{done is not None} results={len(envelopes)}"
                       f"/{expected or '?'}")
        raise ServeError(
            f"{failure} (after {max(0, replays)} replay(s))")

    def shutdown_server(self) -> Dict[str, Any]:
        """``POST /shutdown`` — ask the server to drain and stop."""
        payload = self._json("POST", "/shutdown", body=b"", expect=202)
        self.close()
        return payload
