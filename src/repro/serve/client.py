"""Stdlib HTTP client for the risk-analysis service.

A thin, dependency-free wrapper over :mod:`http.client` used by the
test suite, the load benchmark and the CI smoke job — and a reference
for talking to the server from any language: every method maps to one
endpoint, streaming submissions iterate the NDJSON events as they
arrive.

Each :class:`ServeClient` owns one keep-alive connection and is *not*
thread-safe; concurrent load tests create one client per thread.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ServeError

#: A submission body: one job spec, a list of specs, or {"jobs": [...]}.
JobPayload = Union[Dict[str, Any], Sequence[Dict[str, Any]]]


class ServeClient:
    """Client for one :class:`~repro.serve.server.RiskServer`.

    Parameters
    ----------
    host, port:
        Server address (e.g. ``server.host``/``server.port`` of an
        in-process :class:`~repro.serve.server.RiskServer`).
    timeout:
        Socket timeout in seconds for connect and reads.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connection(self, fresh: bool = False) -> HTTPConnection:
        if fresh or self._conn is None:
            self.close()
            self._conn = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
            self._conn.connect()
            # Request headers and body go out as separate writes; with
            # Nagle on, the body write waits out the server's delayed
            # ACK (~40 ms) on every request.
            self._conn.sock.setsockopt(socket.IPPROTO_TCP,
                                       socket.TCP_NODELAY, 1)
        return self._conn

    def close(self) -> None:
        """Close the kept-alive connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None):
        """One request/response on the kept-alive connection.

        Retries once on a fresh connection when the server closed the
        idle keep-alive socket between requests.
        """
        headers = {"Accept": "application/json"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            try:
                conn = self._connection(fresh=attempt > 0)
                conn.request(method, path, body=body, headers=headers)
                return conn.getresponse()
            except (ConnectionError, HTTPException, OSError) as exc:
                self.close()
                if attempt:
                    raise ServeError(
                        f"cannot reach server at "
                        f"{self.host}:{self.port}: {exc}") from exc

    def _json(self, method: str, path: str,
              body: Optional[bytes] = None,
              expect: int = 200) -> Dict[str, Any]:
        response = self._request(method, path, body)
        data = response.read()
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"invalid JSON from {method} {path}: {exc}",
                status=response.status) from None
        if response.status != expect:
            raise ServeError(
                payload.get("error",
                            f"{method} {path} -> {response.status}"),
                status=response.status)
        return payload

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /health``."""
        return self._json("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``."""
        return self._json("GET", "/stats")

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — one job's status record."""
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs`` — recent job records, newest first."""
        return self._json("GET", "/jobs")["jobs"]

    def stream(self, jobs: JobPayload) -> Iterator[Dict[str, Any]]:
        """``POST /jobs`` — yield each NDJSON event as it arrives.

        Raises :class:`ServeError` (with ``status``) on 400/429/...;
        once the stream starts, per-job failures arrive as ``error``
        events rather than exceptions.
        """
        body = json.dumps(jobs).encode("utf-8")
        response = self._request("POST", "/jobs", body)
        if response.status != 200:
            data = response.read()
            try:
                message = json.loads(data.decode("utf-8"))["error"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError):
                message = f"POST /jobs -> {response.status}"
            raise ServeError(message, status=response.status)
        for line in response:
            line = line.strip()
            if line:
                yield json.loads(line.decode("utf-8"))

    def submit(self, jobs: JobPayload) -> List[Dict[str, Any]]:
        """``POST /jobs`` — collect the whole event stream into a list."""
        return list(self.stream(jobs))

    def results(self, jobs: JobPayload) -> List[Dict[str, Any]]:
        """Submit and return only the ``result`` envelopes, in job
        order; raises :class:`ServeError` on the first failed job."""
        envelopes: List[Dict[str, Any]] = []
        for event in self.stream(jobs):
            if event["event"] == "error":
                raise ServeError(
                    f"job {event.get('id')} failed: {event['error']}")
            if event["event"] == "result":
                envelopes.append(event)
        return envelopes

    def shutdown_server(self) -> Dict[str, Any]:
        """``POST /shutdown`` — ask the server to drain and stop."""
        payload = self._json("POST", "/shutdown", body=b"", expect=202)
        self.close()
        return payload
