"""Job registry: ids, status transitions and history for the service.

Every job a server accepts gets a monotonically increasing id
(``j-000001``, ...) and a :class:`JobRecord` tracking its life cycle
``queued → running → done | failed``.  The registry is the data behind
``GET /jobs`` and ``GET /jobs/<id>``: it remembers a bounded window of
finished jobs (oldest finished records are evicted first) so a
long-running server's memory stays flat, while jobs still queued or
running are never evicted.

The registry is bookkeeping only — request *coalescing* lives in
:meth:`repro.engine.Engine.run_shared`; the registry records its
outcome (which submission computed, which were coalesced or served
from cache) per job id.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.engine import RunOutcome
from repro.engine.jobs import Job
from repro.errors import ServeError

#: Life-cycle states of one submitted job.
STATUSES = ("queued", "running", "done", "failed")


@dataclass
class JobRecord:
    """One submitted job's id, provenance and life cycle."""

    id: str
    kind: str
    description: str
    fingerprint: str
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cache_hit: Optional[bool] = None
    coalesced: Optional[bool] = None
    wall_time_s: Optional[float] = None
    error: Optional[str] = None
    result: Any = None

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status in ("done", "failed")

    def as_dict(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON-safe view of the record (the ``GET /jobs/<id>`` body)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "type": self.kind,
            "job": self.description,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "wall_time_s": self.wall_time_s,
            "error": self.error,
        }
        if include_result and self.status == "done":
            payload["result"] = self.result
        return payload


class JobRegistry:
    """Thread-safe id assignment and status tracking for server jobs.

    Parameters
    ----------
    history:
        Number of *finished* records kept for ``GET /jobs/<id>``
        lookups; queued/running jobs are always retained on top of
        this bound.
    """

    def __init__(self, history: int = 512):
        if history < 1:
            raise ServeError(f"history must be >= 1, got {history}")
        self.history = int(history)
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._next = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def create(self, job: Job) -> JobRecord:
        """Register one accepted job; assigns and returns its record."""
        with self._lock:
            self._next += 1
            record = JobRecord(id=f"j-{self._next:06d}", kind=job.kind,
                               description=job.describe(),
                               fingerprint=job.fingerprint())
            self._records[record.id] = record
            self._order.append(record.id)
            self._evict()
            return record

    def _evict(self) -> None:
        finished = [job_id for job_id in self._order
                    if self._records[job_id].finished]
        excess = len(finished) - self.history
        for job_id in finished[:max(0, excess)]:
            del self._records[job_id]
            self._order.remove(job_id)

    def mark_running(self, job_id: str) -> None:
        """Transition a queued job to ``running``."""
        with self._lock:
            record = self._require(job_id)
            record.status = "running"
            record.started_at = time.time()

    def mark_done(self, job_id: str, outcome: RunOutcome,
                  result: Any) -> None:
        """Record a successful outcome (``result`` already encoded)."""
        with self._lock:
            record = self._require(job_id)
            record.status = "done"
            record.finished_at = time.time()
            record.cache_hit = outcome.cache_hit
            record.coalesced = outcome.coalesced
            record.wall_time_s = outcome.wall_time
            record.result = result
            self._evict()

    def mark_failed(self, job_id: str, error: str) -> None:
        """Record a failure (timeout, engine error, ...)."""
        with self._lock:
            record = self._require(job_id)
            record.status = "failed"
            record.finished_at = time.time()
            record.error = str(error)
            self._evict()

    def _require(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise ServeError(f"unknown job id {job_id!r}",
                             status=404) from None

    def get(self, job_id: str) -> JobRecord:
        """The record of one job id; raises :class:`ServeError` (404)."""
        with self._lock:
            return self._require(job_id)

    def list(self, limit: int = 50) -> List[JobRecord]:
        """The most recent records, newest first."""
        with self._lock:
            recent = self._order[-max(0, int(limit)):]
            return [self._records[job_id] for job_id in reversed(recent)]

    def counts(self) -> Dict[str, int]:
        """Number of known records per status (the ``/stats`` view)."""
        with self._lock:
            counts = {status: 0 for status in STATUSES}
            for record in self._records.values():
                counts[record.status] += 1
            counts["total"] = self._next
            return counts
