"""The multi-tenant risk-analysis HTTP service.

A :class:`RiskServer` wraps one shared :class:`~repro.engine.Engine`
(thread-safe cache, request coalescing) in a stdlib
``ThreadingHTTPServer``.  Clients POST the ``repro batch`` JSON job
format to ``/jobs`` and read back a *stream* of newline-delimited JSON
events (chunked transfer encoding): one ``accepted`` and one ``started``
event per job as it moves through the queue, a ``result`` envelope the
moment each job finishes, and a final ``done`` summary — a slow sweep
does not delay the results of the quantify jobs submitted next to it.

Back-pressure is two-layered: at most ``queue_limit`` requests are
admitted concurrently (a saturated server answers ``429`` immediately
with a ``Retry-After`` hint), and at most ``max_concurrency`` engine
computations run at once — admitted jobs queue on the compute
semaphore and fail individually with a ``timeout`` error event when
``request_timeout`` elapses.  Cache hits and coalesced waits bypass the
compute gate entirely, which is what makes the warm path fast enough
for interactive what-if analysis.

Shutdown is graceful: the listening socket closes first, in-flight
requests drain (bounded by a timeout), then the result cache is
persisted to disk when a cache path is configured.
"""

from __future__ import annotations

import json
import logging
import signal
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.engine import Engine, jobs_from_payload, result_envelope
from repro.errors import EngineError, ReproError, ServeError
from repro.resilience import FaultPlan
from repro.serve.registry import JobRegistry

log = logging.getLogger("repro.serve")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`RiskServer`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`RiskServer.port` — the pattern tests and benchmarks use).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 1
    cache_path: Optional[str] = None
    cache_backend: str = "auto"
    cache_capacity: int = 4096
    cache_ttl: Optional[float] = None
    cache_max_bytes: Optional[int] = None
    warm_manifest: Optional[str] = None
    max_concurrency: int = 8
    queue_limit: int = 32
    request_timeout: float = 60.0
    history: int = 512
    #: Optional fault-injection plan threaded into the engine (and so
    #: the pool + cache) plus the ``serve.stream`` site — chaos tests
    #: and ``repro serve --fault-plan`` only; ``None`` in production.
    fault_plan: Optional[FaultPlan] = None

    def validate(self) -> "ServerConfig":
        if self.max_concurrency < 1:
            raise ServeError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}")
        if self.queue_limit < 1:
            raise ServeError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.request_timeout <= 0:
            raise ServeError(
                f"request_timeout must be > 0, got {self.request_timeout}")
        return self


class RiskServer:
    """One long-running risk-analysis service around a shared engine.

    Parameters
    ----------
    config:
        Server tunables; defaults bind ``127.0.0.1:8080``.
    engine:
        A pre-built engine to serve from (shares its cache with other
        owners); by default the server builds its own from the config's
        ``workers``/``cache_path``/``cache_capacity``.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 engine: Optional[Engine] = None):
        self.config = (config or ServerConfig()).validate()
        self.engine = engine if engine is not None else Engine(
            workers=self.config.workers,
            cache_path=self.config.cache_path,
            cache_backend=self.config.cache_backend,
            cache_capacity=self.config.cache_capacity,
            cache_ttl=self.config.cache_ttl,
            cache_max_bytes=self.config.cache_max_bytes,
            warm_manifest=self.config.warm_manifest,
            fault_plan=self.config.fault_plan)
        #: The plan driving the ``serve.stream`` site (a pre-built
        #: engine contributes its own plan when the config has none).
        self.fault_plan = self.config.fault_plan \
            if self.config.fault_plan is not None \
            else getattr(self.engine, "fault_plan", None)
        self.registry = JobRegistry(history=self.config.history)
        self.started_at = time.time()
        self.accepted = 0
        self.rejected = 0
        self._active = 0
        self._draining = False
        self._shut_down = False
        self._state = threading.Condition()
        self._slots = threading.Semaphore(self.config.max_concurrency)
        self._thread: Optional[threading.Thread] = None
        self._httpd = _HTTPServer((self.config.host, self.config.port),
                                  _Handler)
        self._httpd.risk_server = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved when the config asked for 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RiskServer":
        """Serve in a daemon thread; returns self (for chaining)."""
        if self._thread is not None:
            raise ServeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve",
                                        daemon=True)
        self._thread.start()
        log.info("serving on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        log.info("serving on %s", self.url)
        self._httpd.serve_forever()

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        """Stop the server; with ``drain`` wait for in-flight requests.

        New submissions are rejected (429) the moment shutdown begins;
        already-admitted requests run to completion (bounded by
        ``timeout`` seconds), then the listening socket closes and the
        result cache is persisted when a path is configured.
        """
        with self._state:
            if self._shut_down:
                return
            self._draining = True
        if drain:
            deadline = None if timeout is None \
                else time.monotonic() + timeout
            with self._state:
                while self._active:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        log.warning(
                            "shutdown timed out with %d active "
                            "request(s)", self._active)
                        break
                    self._state.wait(remaining)
        with self._state:
            if self._shut_down:
                # A concurrent shutdown (SIGTERM racing POST /shutdown)
                # finished the teardown while this call drained.
                return
            self._shut_down = True
        # Persist before releasing serve_forever: when shutdown runs on
        # a daemon thread (POST /shutdown), the process may exit the
        # moment serve_forever returns.
        if self.config.cache_path:
            self.engine.save_cache()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into the draining :meth:`shutdown`.

        Without this a ``repro serve`` process dies mid-request on
        SIGTERM (orchestrators send exactly that), losing in-flight
        responses and the cache save.  The handler returns immediately
        — draining runs on a helper thread, because a signal handler
        that blocks can deadlock the very requests it is waiting on.
        Only the main thread may install handlers; calls from other
        threads (e.g. embedded test servers) are a logged no-op.
        """
        if threading.current_thread() is not threading.main_thread():
            log.debug("not on the main thread; signal handlers "
                      "not installed")
            return

        def _on_signal(signum: int, frame: Any) -> None:
            log.info("received %s: draining and shutting down",
                     signal.Signals(signum).name)
            threading.Thread(target=self.shutdown,
                             name="repro-serve-signal-shutdown",
                             daemon=True).start()

        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, _on_signal)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def try_admit(self) -> bool:
        """Claim one request slot; False when saturated or draining."""
        with self._state:
            if self._draining or self._active >= self.config.queue_limit:
                self.rejected += 1
                return False
            self._active += 1
            self.accepted += 1
            return True

    def release(self) -> None:
        """Return one request slot (wakes a draining shutdown)."""
        with self._state:
            self._active = max(0, self._active - 1)
            self._state.notify_all()

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def process_jobs(self, jobs, emit,
                     deadline: Optional[float] = None) -> None:
        """Run one admitted submission, emitting NDJSON event dicts.

        ``jobs`` is the validated job list
        (:func:`~repro.engine.specs.jobs_from_payload`); ``emit`` is
        called with one JSON-safe dict per event, and exceptions it
        raises (client disconnects, injected stream faults) abort the
        remaining jobs.  ``deadline`` is an optional monotonic instant
        (the client's ``X-Repro-Timeout`` budget) propagated into every
        compute-slot and coalescing wait — a request never holds
        resources past the point its client stopped caring.
        """
        records = [self.registry.create(job) for job in jobs]
        failed = 0
        for index, (job, record) in enumerate(zip(jobs, records)):
            emit({"event": "accepted", "id": record.id, "index": index,
                  "type": job.kind, "job": record.description,
                  "fingerprint": record.fingerprint})
            queued = time.perf_counter()
            self.registry.mark_running(record.id)
            emit({"event": "started", "id": record.id})
            timeout = self.config.request_timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                timeout = min(timeout, remaining)
            if timeout <= 0:
                failed += 1
                message = "request deadline exceeded before start"
                self.registry.mark_failed(record.id, message)
                emit({"event": "error", "id": record.id,
                      "error": message, "queued_s": 0.0})
                continue
            try:
                outcome = self.engine.run_shared(
                    job, timeout=timeout, slots=self._slots)
            except ReproError as exc:
                # Job-level failures (validation, timeouts) fail one
                # job and the stream continues.  Infrastructure faults
                # (InjectedFault is an OSError, not a ReproError)
                # deliberately fall through to the transport layer.
                failed += 1
                self.registry.mark_failed(record.id, str(exc))
                emit({"event": "error", "id": record.id,
                      "error": str(exc),
                      "queued_s": time.perf_counter() - queued})
                continue
            envelope = result_envelope(job, outcome, job_id=record.id,
                                       index=index)
            self.registry.mark_done(record.id, outcome,
                                    envelope["result"])
            emit({"event": "result", **envelope})
        stats = self.engine.stats()
        emit({"event": "done", "jobs": len(jobs), "failed": failed,
              "engine": {"executed": stats.executed,
                         "coalesced": stats.coalesced,
                         "degraded": stats.degraded,
                         "retries": stats.retries,
                         "recovered": stats.recovered,
                         "cache": stats.cache}})

    # ------------------------------------------------------------------
    # Introspection payloads
    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        """The ``GET /health`` body."""
        with self._state:
            status = "draining" if self._draining else "ok"
            active = self._active
        return {"status": status,
                "uptime_s": time.time() - self.started_at,
                "active_requests": active,
                "inflight": self.engine.inflight}

    def stats_payload(self) -> Dict[str, Any]:
        """The ``GET /stats`` body."""
        stats = self.engine.stats()
        shared = stats.executed + stats.coalesced
        with self._state:
            server = {"url": self.url,
                      "uptime_s": time.time() - self.started_at,
                      "active_requests": self._active,
                      "queue_limit": self.config.queue_limit,
                      "max_concurrency": self.config.max_concurrency,
                      "draining": self._draining,
                      "accepted": self.accepted,
                      "rejected": self.rejected}
        return {
            "server": server,
            "jobs": self.registry.counts(),
            "engine": {"workers": stats.workers,
                       "executed": stats.executed,
                       "coalesced": stats.coalesced,
                       "inflight": stats.inflight},
            "coalescing": {
                "executed": stats.executed,
                "coalesced": stats.coalesced,
                "coalesce_rate": (stats.coalesced / shared
                                  if shared else 0.0)},
            "cache": self.engine.cache.info(),
            # Module-cache and sifting counters from incremental
            # (what-if) jobs served by this engine.
            "incremental": stats.incremental,
            # Degradations, retries and recoveries — all 0 on a
            # healthy run (see docs/resilience.md).
            "resilience": {
                "degraded": stats.degraded,
                "retries": stats.retries,
                "recovered": stats.recovered,
                "faults_injected": stats.faults_injected,
                "cache_degraded_mode": self.engine.cache.degraded_mode,
            },
        }


class _HTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying a reference to its RiskServer."""

    daemon_threads = True
    # Draining is handled by RiskServer.shutdown, not by join-on-close.
    block_on_close = False
    risk_server: RiskServer

    def handle_error(self, request, client_address):
        # Clients hanging up mid-stream (and handler threads racing a
        # socket close during shutdown) are routine, not stack traces.
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError,
                            OSError)):
            log.debug("connection error from %s: %s",
                      client_address, exc)
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """Route table: the HTTP surface of one :class:`RiskServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    timeout = 120
    # Headers and each streamed chunk are separate writes; with Nagle
    # on, the second write stalls a delayed-ACK interval (~40 ms) and
    # caps warm-cache throughput at ~25 requests/second per client.
    disable_nagle_algorithm = True

    @property
    def risk(self) -> RiskServer:
        return self.server.risk_server  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("%s - %s", self.address_string(), format % args)

    # ------------------------------------------------------------------
    # Plain JSON responses
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any],
                   extra_headers: Tuple[Tuple[str, str], ...] = ()
                   ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         **extra: Any) -> None:
        headers: Tuple[Tuple[str, str], ...] = ()
        if status == 429:
            headers = (("Retry-After", "1"),)
        self._send_json(status, {"error": message, **extra}, headers)

    # ------------------------------------------------------------------
    # GET routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/health":
            self._send_json(200, self.risk.health_payload())
        elif path == "/stats":
            self._send_json(200, self.risk.stats_payload())
        elif path == "/jobs":
            records = self.risk.registry.list()
            self._send_json(200, {"jobs": [
                record.as_dict(include_result=False)
                for record in records]})
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            try:
                record = self.risk.registry.get(job_id)
            except ServeError as exc:
                self._send_error_json(404, str(exc))
                return
            self._send_json(200, record.as_dict())
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    # ------------------------------------------------------------------
    # POST routes
    # ------------------------------------------------------------------
    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/jobs":
            self._post_jobs()
        elif path == "/shutdown":
            self._send_json(202, {"status": "shutting down"})
            # Drain from a helper thread: this handler must finish (and
            # its response flush) without waiting on itself.
            threading.Thread(target=self.risk.shutdown,
                             name="repro-serve-shutdown",
                             daemon=True).start()
            self.close_connection = True
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def _post_jobs(self) -> None:
        body = self._read_body()
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        # Validate before admission: malformed requests must not
        # consume queue slots (and must 400, not stream).  Any
        # domain-level rejection counts — a bad tree spec raises
        # SerializationError, not EngineError, and either is the
        # client's fault, never a connection-killing 500.
        try:
            jobs = jobs_from_payload(payload, allow_files=False)
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        if not self.risk.try_admit():
            self._send_error_json(
                429, "server saturated: request queue is full",
                queue_limit=self.risk.config.queue_limit)
            return
        # Deadline propagation: a client that bounded its own wait
        # (ServeClient sends its timeout) bounds the server-side queue
        # and compute waits too.
        deadline: Optional[float] = None
        budget = self.headers.get("X-Repro-Timeout")
        if budget is not None:
            try:
                deadline = time.monotonic() + float(budget)
            except ValueError:
                log.debug("ignoring malformed X-Repro-Timeout %r",
                          budget)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            try:
                self.risk.process_jobs(jobs, self._emit_event,
                                       deadline=deadline)
                self.wfile.write(b"0\r\n\r\n")
            except OSError as exc:
                # Client hang-ups and injected stream faults: the
                # remaining jobs are abandoned (their registry records
                # stay in their last state), the connection dies, the
                # server keeps serving everyone else.
                log.info("stream aborted mid-response: %s", exc)
                self.close_connection = True
        finally:
            self.risk.release()

    def _emit_event(self, event: Dict[str, Any]) -> None:
        """Write one NDJSON event as an HTTP/1.1 chunk."""
        data = json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
        plan = self.risk.fault_plan
        if plan is not None:
            # Truncation mangles the NDJSON line (the chunk frame stays
            # valid); io_error/crash raise InjectedFault, which the
            # stream handler above treats exactly like a hang-up.
            data = plan.pulse("serve.stream", data)
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii")
                         + data + b"\r\n")


def serve(config: Optional[ServerConfig] = None,
          engine: Optional[Engine] = None) -> None:
    """Build a :class:`RiskServer` and serve until interrupted.

    SIGTERM and SIGINT trigger the same draining shutdown the
    ``POST /shutdown`` endpoint runs: reject new work, finish
    in-flight requests, persist the cache, close the socket.
    """
    server = RiskServer(config, engine=engine)
    server.install_signal_handlers()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        log.info("interrupt: draining and shutting down")
        server.shutdown()
