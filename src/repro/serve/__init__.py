"""Multi-tenant risk-analysis service over the batch engine.

The paper's pitch is *interactive* safety analysis — re-quantifying the
Elbtunnel risk as parameters change.  This package turns the engine's
one-shot CLI into a long-running, zero-heavy-dependency HTTP service:

* :mod:`repro.serve.server`   — :class:`RiskServer`, a stdlib
  ``ThreadingHTTPServer`` that accepts the ``repro batch`` JSON job
  format over ``POST /jobs`` and streams NDJSON progress/result events
  back per job, with bounded concurrency (429 + per-job timeouts) and
  graceful draining shutdown,
* :mod:`repro.serve.registry` — job ids and status records behind
  ``GET /jobs`` and ``GET /jobs/<id>``,
* :mod:`repro.serve.client`   — :class:`ServeClient`, the stdlib
  ``http.client`` helper used by tests, benchmarks and CI.

All requests run on **one shared engine**: the content-addressed cache
makes repeated questions free, and request *coalescing*
(:meth:`repro.engine.Engine.run_shared`) makes concurrent identical
questions cost a single computation.

Quickstart::

    from repro.serve import RiskServer, ServeClient, ServerConfig

    server = RiskServer(ServerConfig(port=0, workers=2)).start()
    with ServeClient(server.host, server.port) as client:
        for event in client.stream([{"type": "quantify",
                                     "tree": "fig2"}]):
            print(event)
    server.shutdown()

Or from the command line: ``repro serve --port 8080`` and
``curl -N -d @jobs.json http://localhost:8080/jobs``.
"""

from repro.serve.client import ServeClient
from repro.serve.registry import JobRecord, JobRegistry
from repro.serve.server import RiskServer, ServerConfig, serve

__all__ = [
    "RiskServer",
    "ServerConfig",
    "serve",
    "ServeClient",
    "JobRegistry",
    "JobRecord",
]
