"""ASCII rendering of tables, series, surfaces and charts for reports."""

from repro.viz.plots import histogram, line_chart
from repro.viz.tables import (
    format_series,
    format_surface,
    format_table,
    sparkline,
    tornado_table,
)

__all__ = [
    "format_table",
    "format_series",
    "format_surface",
    "sparkline",
    "tornado_table",
    "line_chart",
    "histogram",
]
