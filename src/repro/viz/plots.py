"""ASCII line charts for terminal reports.

Renders (x, y) series as a character grid with axes — enough to *see*
the Fig. 6 shape in a terminal without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

_MARKERS = "ox+*#@%&"


#: Fill character for percentile bands.
_BAND_FILL = "."


def line_chart(series: Dict[str, List[Tuple[float, float]]],
               width: int = 60, height: int = 16, title: str = "",
               y_min: float = None, y_max: float = None,
               bands: Dict[str, List[Tuple[float, float, float]]] = None
               ) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets its own marker character; a legend maps markers to
    names.  Axis ranges default to the data's bounding box.

    ``bands`` optionally adds named uncertainty bands — lists of
    ``(x, low, high)`` triples, e.g. a credible interval around a
    median curve — rendered as a dotted fill underneath the series
    markers and included in the autoscaled axis ranges and the legend.
    """
    if not series:
        raise ReproError("no series to plot")
    if width < 10 or height < 4:
        raise ReproError("chart needs width >= 10 and height >= 4")
    bands = bands or {}
    all_points = [p for curve in series.values() for p in curve]
    band_points = [(x, y) for band in bands.values()
                   for x, lo, hi in band for y in (lo, hi)]
    if not all_points:
        raise ReproError("series contain no points")
    for name, band in bands.items():
        if any(lo > hi for _x, lo, hi in band):
            raise ReproError(
                f"band {name!r} has a low value above its high value")
    scale_points = all_points + band_points
    x_lo = min(x for x, _y in scale_points)
    x_hi = max(x for x, _y in scale_points)
    y_lo = y_min if y_min is not None else min(y for _x, y in scale_points)
    y_hi = y_max if y_max is not None else max(y for _x, y in scale_points)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return col, row

    def place(x: float, y: float, marker: str) -> None:
        col, row = cell(x, y)
        if 0 <= col < width and 0 <= row < height:
            grid[height - 1 - row][col] = marker

    # Bands first, so series markers draw on top of the fill.
    for band in bands.values():
        for x, lo, hi in band:
            col, row_lo = cell(x, lo)
            _col, row_hi = cell(x, hi)
            if not 0 <= col < width:
                continue
            for row in range(max(0, row_lo), min(height - 1, row_hi) + 1):
                grid[height - 1 - row][col] = _BAND_FILL

    names = sorted(series)
    for index, name in enumerate(names):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in series[name]:
            place(x, y, marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = y_hi - row_index * (y_hi - y_lo) / (height - 1)
        lines.append(f"{y_value:8.3g} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = (f"{' ' * 10}{x_lo:<10.4g}"
              f"{' ' * max(0, width - 20)}{x_hi:>10.4g}")
    lines.append(x_axis)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(names))
    for band_name in sorted(bands):
        legend += f"  {_BAND_FILL} = {band_name}"
    lines.append(f"{' ' * 10}{legend}")
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40,
              title: str = "") -> str:
    """Render a horizontal ASCII histogram of sampled values."""
    if not values:
        raise ReproError("no values to plot")
    if bins < 1 or width < 1:
        raise ReproError("bins and width must be >= 1")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for value in values:
        index = min(int((value - lo) / (hi - lo) * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        left = lo + i * (hi - lo) / bins
        bar = "#" * (round(count / peak * width) if peak else 0)
        lines.append(f"{left:10.4g} | {bar} {count}")
    return "\n".join(lines)
