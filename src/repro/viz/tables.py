"""Plain-text tables, series plots and surface heat-text rendering.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and readable in a terminal
without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

_BLOCKS = " .:-=+*#%@"


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table.

    Cells are stringified with ``str``; floats are shown with ``%g``-like
    compaction via ``format``.
    """
    if not headers:
        raise ReproError("table needs at least one column")
    text_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row {row!r} has {len(row)} cells for "
                f"{len(headers)} headers")
        text_rows.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of values as a compact character strip."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[len(_BLOCKS) // 2] * len(values)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int((v - lo) * scale)] for v in values)


def format_series(series: Dict[str, List[Tuple[float, float]]],
                  title: str = "", value_format: str = "{:.4f}",
                  max_points: int = 12) -> str:
    """Render named (x, y) series as a table with one row per x.

    All series must share the same x grid; long grids are subsampled to
    ``max_points`` rows, keeping the endpoints.
    """
    if not series:
        raise ReproError("no series to format")
    names = sorted(series)
    xs = [x for x, _y in series[names[0]]]
    for name in names:
        if [x for x, _y in series[name]] != xs:
            raise ReproError(
                f"series {name!r} has a different x grid")
    indices = list(range(len(xs)))
    if len(indices) > max_points:
        step = (len(indices) - 1) / (max_points - 1)
        indices = sorted({round(i * step) for i in range(max_points)})
    headers = ["x"] + names
    rows = []
    for i in indices:
        row = [f"{xs[i]:.4g}"]
        for name in names:
            row.append(value_format.format(series[name][i][1]))
        rows.append(row)
    table = format_table(headers, rows, title=title)
    strips = "\n".join(
        f"  {name:<16s} {sparkline([y for _x, y in series[name]])}"
        for name in names)
    return table + "\n" + strips


def format_surface(x_values: Sequence[float], y_values: Sequence[float],
                   z: Sequence[Sequence[float]], title: str = "",
                   max_cells: int = 16) -> str:
    """Render a 2-D surface as a character heat map plus its minimum.

    ``z[i][j]`` corresponds to ``(x_values[i], y_values[j])``; darker
    characters are higher values, ``m`` marks the minimum cell.
    """
    if not x_values or not y_values:
        raise ReproError("surface needs non-empty axes")
    xi = _subsample(len(x_values), max_cells)
    yi = _subsample(len(y_values), max_cells)
    flat = [z[i][j] for i in xi for j in yi]
    lo, hi = min(flat), max(flat)
    span = hi - lo if hi > lo else 1.0
    min_cell = min(((i, j) for i in xi for j in yi),
                   key=lambda ij: z[ij[0]][ij[1]])
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "        " + " ".join(f"{y_values[j]:6.3g}" for j in yi)
    lines.append(header)
    for i in xi:
        cells = []
        for j in yi:
            if (i, j) == min_cell:
                cells.append("  m   ")
            else:
                level = int((z[i][j] - lo) / span * (len(_BLOCKS) - 1))
                cells.append("  " + _BLOCKS[level] + "   ")
        lines.append(f"{x_values[i]:6.3g}  " + " ".join(c[:6] for c in cells))
    lines.append(
        f"minimum: z={z[min_cell[0]][min_cell[1]]:.6g} at "
        f"({x_values[min_cell[0]]:.4g}, {y_values[min_cell[1]]:.4g})")
    return "\n".join(lines)


def _subsample(count: int, limit: int) -> List[int]:
    if count <= limit:
        return list(range(count))
    step = (count - 1) / (limit - 1)
    return sorted({round(i * step) for i in range(limit)})


def tornado_table(first: Dict[str, float],
                  total: Dict[str, float] = None,
                  title: str = "", width: int = 30) -> str:
    """Render sensitivity indices as a tornado-style ranked bar table.

    ``first`` maps names to first-order (or swing) values; ``total``
    optionally adds a total-order column and drives the ranking when
    given.  Bars scale the ranking column against the largest entry —
    the classic tornado shape, in plain text.
    """
    if not first:
        raise ReproError("no sensitivity entries to render")
    if width < 1:
        raise ReproError("bar width must be >= 1")
    if total is not None and set(total) != set(first):
        raise ReproError(
            "first- and total-order entries must cover the same names")
    ranking = total if total is not None else first
    names = sorted(first, key=lambda n: ranking[n], reverse=True)
    peak = max(ranking.values())
    rows = []
    for name in names:
        bar = "#" * (round(ranking[name] / peak * width) if peak > 0
                     else 0)
        if total is not None:
            rows.append([name, first[name], total[name], bar])
        else:
            rows.append([name, first[name], bar])
    headers = ["event", "S1", "ST", ""] if total is not None \
        else ["event", "value", ""]
    return format_table(headers, rows, title=title)
