"""Vectorized quantification compiler: trees → reusable batch evaluators.

The safety-optimization loop evaluates the same fault trees thousands of
times — across parameter grids, optimizer iterations and Monte Carlo
checks.  :mod:`repro.engine` removes *redundant* work via caching; this
package removes the per-point interpretation cost: a tree is compiled
once into a flat program and whole parameter batches are evaluated as
NumPy array operations.

Three backends, one front door:

* :class:`CompiledTape` — the tree's BDD lowered into a flat
  arithmetic-circuit tape; exact quantification of ``(batch,)``
  leaf-probability columns (handles XOR/NOT, shared events, houses).
* :class:`CompiledCutSets` — the MOCUS output compiled to column-index
  product/sum reductions over a ``(batch, n_leaves)`` matrix
  (``rare_event``, ``mcub``; all constraint policies).
* :class:`CompiledSampler` — the structure function flattened into a
  gate program evaluated on Bernoulli draw blocks, bit-packed into
  ``uint8`` words for trees without K-of-N gates.

All compiled paths replay the interpreted arithmetic operation-for-
operation, so results are **bit-identical** to
:func:`repro.fta.quantify.hazard_probability` and
:func:`repro.sim.montecarlo.monte_carlo_counts` — callers can switch
freely between paths without perturbing cached results or seeded runs.

Use :func:`compile_tree` (memoized per tree object) unless you need a
backend directly::

    from repro.compile import compile_tree

    evaluator = compile_tree(tree, method="exact")
    values = evaluator.evaluate(list_of_override_dicts)  # (batch,)
"""

from repro.compile.cutsets import CUT_SET_METHODS, CompiledCutSets
from repro.compile.evaluator import (
    COMPILED_METHODS,
    CompiledHazard,
    compile_tree,
    supports_compilation,
)
from repro.compile.sampler import CompiledSampler, compile_sampler
from repro.compile.tape import CompiledTape

__all__ = [
    "COMPILED_METHODS",
    "CUT_SET_METHODS",
    "CompiledCutSets",
    "CompiledHazard",
    "CompiledSampler",
    "CompiledTape",
    "compile_sampler",
    "compile_tree",
    "supports_compilation",
]
