"""Lower a fault tree's BDD into a flat arithmetic-circuit tape.

The exact probability of a Boolean function over independent leaves is a
single bottom-up pass over its ROBDD (``P = (1-p)*P(low) + p*P(high)``,
see :mod:`repro.bdd.prob`).  That pass walks the manager's node arena
with per-node dictionary bookkeeping — fine for one evaluation, wasteful
for thousands.  :class:`CompiledTape` lowers the arena arrays *once* at
compile time, recording each node as one fused-multiply step over value
slots; evaluating the tape is then a short loop over NumPy array
operations, so a whole batch of leaf-probability vectors is quantified
at C speed.

The tape replays exactly the arithmetic of the interpreted walk (same
operations, same order, IEEE doubles throughout), so compiled results are
bit-identical to :func:`repro.bdd.prob.probability` — not merely close.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bdd.manager import BDDManager
from repro.errors import QuantificationError
from repro.fta.quantify import to_bdd
from repro.fta.tree import FaultTree

#: Slots 0 and 1 of every tape hold the terminal values 0.0 and 1.0.
_FALSE_SLOT = 0
_TRUE_SLOT = 1


class CompiledTape:
    """A fault tree's exact quantification, compiled to a flat tape.

    Parameters
    ----------
    tree:
        The fault tree; all gate types (including XOR/NOT/INHIBIT and
        house events) are supported, exactly as in
        :func:`repro.fta.quantify.to_bdd`.

    Attributes
    ----------
    leaf_names:
        Leaf (primary failure / condition) names in BDD variable order —
        the column order expected by :meth:`evaluate`.
    """

    def __init__(self, tree: FaultTree):
        manager = BDDManager()
        root = to_bdd(tree, manager)
        self._lower(manager, root.index, tree.name)

    @classmethod
    def from_bdd(cls, manager: BDDManager, root,
                 tree_name: str = "bdd") -> "CompiledTape":
        """Lower an already-built diagram (e.g. after sifting).

        ``root`` is a :class:`repro.bdd.manager.Node` in ``manager``.
        The tape's column order is the manager's variable order, whatever
        it is — callers who reordered (sifted) get a tape matching the
        new order.
        """
        tape = cls.__new__(cls)
        tape._lower(manager, root.index, tree_name)
        return tape

    def _lower(self, manager: BDDManager, root_index: int,
               tree_name: str) -> None:
        self.tree_name = tree_name
        self.leaf_names: List[str] = [manager.var_name(i)
                                      for i in range(manager.var_count)]
        self._column: Dict[str, int] = {name: j for j, name
                                        in enumerate(self.leaf_names)}
        # Lower straight from the arena arrays: ascending index order is
        # topological (children first), so each node maps to one step
        # whose operand slots are already assigned.
        vars_, lows, highs = manager.arena
        slot_of: Dict[int, int] = {0: _FALSE_SLOT, 1: _TRUE_SLOT}
        steps: List[tuple] = []
        for index in manager.topological_indices(root_index):
            slot_of[index] = 2 + len(steps)
            steps.append((vars_[index], slot_of[lows[index]],
                          slot_of[highs[index]]))
        # One step per node: (leaf column, low slot, high slot).
        self._steps = steps
        self._root_slot = slot_of[root_index]
        self._support = frozenset(self.leaf_names[var]
                                  for var, _lo, _hi in self._steps)

    def encode(self) -> Dict[str, object]:
        """JSON-safe form for cache persistence (see :meth:`decode`).

        The encoding captures everything evaluation touches — leaf/column
        order, steps, root slot — so a decoded tape performs bit-identical
        arithmetic to the compiled original.
        """
        return {"tree": self.tree_name,
                "leaves": list(self.leaf_names),
                "steps": [list(step) for step in self._steps],
                "root": self._root_slot}

    @classmethod
    def decode(cls, encoded: Dict[str, object]) -> "CompiledTape":
        """Rebuild a tape from :meth:`encode` output."""
        try:
            tape = cls.__new__(cls)
            tape.tree_name = str(encoded["tree"])
            tape.leaf_names = [str(name) for name in encoded["leaves"]]
            tape._steps = [(int(var), int(low), int(high))
                           for var, low, high in encoded["steps"]]
            tape._root_slot = int(encoded["root"])
        except (KeyError, TypeError, ValueError) as exc:
            raise QuantificationError(
                f"invalid encoded tape: {exc}") from exc
        tape._column = {name: j for j, name
                        in enumerate(tape.leaf_names)}
        tape._support = frozenset(tape.leaf_names[var]
                                  for var, _lo, _hi in tape._steps)
        return tape

    @property
    def size(self) -> int:
        """Number of decision steps on the tape (BDD node count)."""
        return len(self._steps)

    @property
    def support(self) -> frozenset:
        """Leaf names the compiled function actually depends on."""
        return self._support

    def evaluate(self, matrix: np.ndarray) -> np.ndarray:
        """Exact hazard probabilities for a whole batch of leaf vectors.

        ``matrix`` has shape ``(batch, len(leaf_names))``; column ``j``
        holds the probability of ``leaf_names[j]`` at each batch point.
        Returns a ``(batch,)`` array, bit-identical to evaluating the
        interpreted BDD walk point by point.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.leaf_names):
            raise QuantificationError(
                f"probability matrix must have shape "
                f"(batch, {len(self.leaf_names)}), got {matrix.shape}")
        batch = matrix.shape[0]
        if self._root_slot == _FALSE_SLOT:
            return np.zeros(batch)
        if self._root_slot == _TRUE_SLOT:
            return np.ones(batch)
        slots: List[Optional[np.ndarray]] = \
            [None] * (2 + len(self._steps))
        slots[_FALSE_SLOT] = np.zeros(batch)
        slots[_TRUE_SLOT] = np.ones(batch)
        for index, (var, low, high) in enumerate(self._steps):
            p = matrix[:, var]
            slots[2 + index] = (1.0 - p) * slots[low] + p * slots[high]
        return slots[self._root_slot]

    def scalar(self, probabilities: Dict[str, float]) -> float:
        """Exact probability for one leaf valuation (no array overhead).

        Runs the same tape with plain floats — the fast path for
        optimizer objectives that evaluate one point per iteration but
        thousands of iterations per run.  Bit-identical to
        :meth:`evaluate` on a batch of one.
        """
        # Validate first: a house-collapsed (terminal) root must still
        # reject missing/invalid leaf data, like the interpreted path.
        values = self._row(probabilities)
        if self._root_slot == _FALSE_SLOT:
            return 0.0
        if self._root_slot == _TRUE_SLOT:
            return 1.0
        slots: List[float] = [0.0, 1.0] + [0.0] * len(self._steps)
        for index, (var, low, high) in enumerate(self._steps):
            p = values[var]
            slots[2 + index] = (1.0 - p) * slots[low] + p * slots[high]
        return slots[self._root_slot]

    def _row(self, probabilities: Dict[str, float]) -> List[float]:
        """One matrix row from a name → probability mapping."""
        row = []
        for name in self.leaf_names:
            if name not in probabilities:
                raise QuantificationError(
                    f"no probability given for variable {name!r}")
            p = probabilities[name]
            if not 0.0 <= p <= 1.0:
                raise QuantificationError(
                    f"probability of {name!r} must be in [0, 1], got {p}")
            row.append(float(p))
        return row

    def matrix(self, points: Sequence[Dict[str, float]]) -> np.ndarray:
        """Stack leaf valuations into the ``(batch, n_leaves)`` matrix."""
        return np.array([self._row(point) for point in points],
                        dtype=np.float64).reshape(len(points),
                                                  len(self.leaf_names))

    def __repr__(self) -> str:
        return (f"CompiledTape({self.tree_name!r}, {self.size} steps, "
                f"{len(self.leaf_names)} leaves)")
