"""Vectorized cut-set quantification (paper Eq. 1/2 and MCUB).

The interpreted path in :mod:`repro.fta.quantify` walks every cut set
with per-name dictionary lookups at every evaluation point.  Here the
MOCUS output is compiled *once* into leaf column indices; a whole batch
of leaf-probability vectors is then quantified as product/sum reductions
over a ``(batch, n_leaves)`` matrix.

The compiled reductions multiply and add in exactly the interpreted
order (conditions first, then failures, cut sets in collection order),
so results are bit-identical to
:func:`repro.fta.quantify.hazard_probability` — not merely close.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QuantificationError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.cutsets import CutSetCollection, mocus
from repro.fta.events import Condition, PrimaryFailure
from repro.fta.tree import FaultTree

#: Cut-set-based methods this compiler supports.
CUT_SET_METHODS = ("rare_event", "mcub")


class CompiledCutSets:
    """Cut-set quantification compiled to column-index reductions.

    Parameters
    ----------
    tree:
        A coherent fault tree (MOCUS rejects XOR/NOT).
    method:
        ``rare_event`` (paper Eq. 1/2) or ``mcub``.
    policy:
        Constraint-probability policy for INHIBIT conditions.
    cut_sets:
        Pre-computed cut sets (skips MOCUS).
    """

    def __init__(self, tree: FaultTree, method: str = "rare_event",
                 policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
                 cut_sets: Optional[CutSetCollection] = None):
        if method not in CUT_SET_METHODS:
            raise QuantificationError(
                f"unknown cut-set method {method!r}; "
                f"expected one of {CUT_SET_METHODS}")
        self.tree_name = tree.name
        self.method = method
        self.policy = policy
        self.leaf_names: List[str] = [
            e.name for e in tree.iter_events()
            if isinstance(e, (PrimaryFailure, Condition))]
        self._column: Dict[str, int] = {name: j for j, name
                                        in enumerate(self.leaf_names)}
        if cut_sets is None:
            cut_sets = mocus(tree)
        # One entry per cut set: condition columns (in the frozenset's
        # iteration order, matching the interpreted multiply order) and
        # failure columns likewise.
        self._terms: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        for cs in cut_sets:
            try:
                conds = tuple(self._column[name] for name in cs.conditions)
                fails = tuple(self._column[name] for name in cs.failures)
            except KeyError as exc:
                raise QuantificationError(
                    f"cut set names {exc.args[0]!r} which is not a leaf "
                    f"of tree {tree.name!r}") from None
            self._terms.append((conds, fails))

    @property
    def cut_set_count(self) -> int:
        """Number of compiled (minimal) cut sets."""
        return len(self._terms)

    def evaluate(self, matrix: np.ndarray) -> np.ndarray:
        """Quantify a whole batch of leaf-probability vectors.

        ``matrix`` has shape ``(batch, len(leaf_names))``; returns a
        ``(batch,)`` array bit-identical to the interpreted per-point
        quantification.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.leaf_names):
            raise QuantificationError(
                f"probability matrix must have shape "
                f"(batch, {len(self.leaf_names)}), got {matrix.shape}")
        batch = matrix.shape[0]
        if self.method == "rare_event":
            total = np.zeros(batch)
            for conds, fails in self._terms:
                total = total + self._term(matrix, conds, fails)
            return np.minimum(1.0, total)
        product = np.ones(batch)
        for conds, fails in self._terms:
            product = product * (1.0 - self._term(matrix, conds, fails))
        return 1.0 - product

    def _term(self, matrix: np.ndarray, conds: Tuple[int, ...],
              fails: Tuple[int, ...]) -> np.ndarray:
        """One cut set's constrained probability, for the whole batch."""
        if self.policy is ConstraintPolicy.WORST_CASE or not conds:
            q = np.ones(matrix.shape[0])
        elif self.policy is ConstraintPolicy.INDEPENDENT:
            q = np.ones(matrix.shape[0])
            for c in conds:
                q = q * matrix[:, c]
        elif self.policy is ConstraintPolicy.FRECHET:
            q = matrix[:, conds[0]]
            for c in conds[1:]:
                q = np.minimum(q, matrix[:, c])
        else:  # pragma: no cover - the enum is closed
            raise QuantificationError(
                f"unknown constraint policy {self.policy!r}")
        for f in fails:
            q = q * matrix[:, f]
        return q

    def scalar(self, probabilities: Dict[str, float]) -> float:
        """Quantify one leaf valuation with plain floats (no arrays).

        The fast path for optimizer objectives; bit-identical to
        :meth:`evaluate` on a batch of one.
        """
        values = self._row(probabilities)
        if self.method == "rare_event":
            total = 0.0
            for conds, fails in self._terms:
                total += self._term_scalar(values, conds, fails)
            return min(1.0, total)
        product = 1.0
        for conds, fails in self._terms:
            product *= 1.0 - self._term_scalar(values, conds, fails)
        return 1.0 - product

    def _term_scalar(self, values: List[float], conds: Tuple[int, ...],
                     fails: Tuple[int, ...]) -> float:
        if self.policy is ConstraintPolicy.WORST_CASE or not conds:
            q = 1.0
        elif self.policy is ConstraintPolicy.INDEPENDENT:
            q = 1.0
            for c in conds:
                q *= values[c]
        else:  # FRECHET
            q = min(values[c] for c in conds)
        for f in fails:
            q *= values[f]
        return q

    def _row(self, probabilities: Dict[str, float]) -> List[float]:
        """One matrix row from a name → probability mapping."""
        row = []
        for name in self.leaf_names:
            if name not in probabilities:
                raise QuantificationError(
                    f"no probability given for {name!r}")
            p = probabilities[name]
            if not 0.0 <= p <= 1.0:
                raise QuantificationError(
                    f"probability of {name!r} must be in [0, 1], got {p}")
            row.append(float(p))
        return row

    def matrix(self, points: Sequence[Dict[str, float]]) -> np.ndarray:
        """Stack leaf valuations into the ``(batch, n_leaves)`` matrix."""
        return np.array([self._row(point) for point in points],
                        dtype=np.float64).reshape(len(points),
                                                  len(self.leaf_names))

    def __repr__(self) -> str:
        return (f"CompiledCutSets({self.tree_name!r}, {self.method}, "
                f"{self.cut_set_count} cut sets, "
                f"{len(self.leaf_names)} leaves)")
