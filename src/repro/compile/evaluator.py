"""The :class:`CompiledHazard` façade: one tree, compiled once.

Compilation front door for the rest of the library: pick the right
backend for a quantification method (BDD tape for ``exact``, column
reductions for ``rare_event``/``mcub``), build the leaf-probability
matrix from per-point override dicts merged over event defaults —
exactly like :func:`repro.fta.quantify.probability_map` — and evaluate
whole batches in one call.

:func:`compile_tree` is memoized per tree object (weakly, so trees stay
garbage-collectable): a hazard quantified by an optimizer across
thousands of iterations, or by a sweep across thousands of grid points,
compiles exactly once per process.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.compile.cutsets import CUT_SET_METHODS, CompiledCutSets
from repro.compile.tape import CompiledTape
from repro.errors import QuantificationError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.cutsets import CutSetCollection
from repro.fta.events import Condition, PrimaryFailure
from repro.fta.tree import FaultTree

#: Methods :func:`compile_tree` can lower.
COMPILED_METHODS = ("exact",) + CUT_SET_METHODS


def supports_compilation(tree: FaultTree, method: str) -> bool:
    """True when ``compile_tree`` can handle this tree/method pair.

    ``exact`` compiles any tree (XOR/NOT included); the cut-set methods
    require a coherent tree, as MOCUS does.
    """
    if method == "exact":
        return True
    return method in CUT_SET_METHODS and tree.is_coherent


class CompiledHazard:
    """A fault tree's quantification compiled into a batch evaluator.

    Thin façade over :class:`~repro.compile.tape.CompiledTape` (exact)
    or :class:`~repro.compile.cutsets.CompiledCutSets` (rare-event /
    MCUB) that adds default-probability handling: evaluation points are
    override dicts merged over the leaf events' default probabilities,
    exactly like the interpreted
    :func:`repro.fta.quantify.hazard_probability`.
    """

    def __init__(self, tree: FaultTree, method: str = "rare_event",
                 policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
                 cut_sets: Optional[CutSetCollection] = None):
        if method not in COMPILED_METHODS:
            raise QuantificationError(
                f"cannot compile method {method!r}; "
                f"expected one of {COMPILED_METHODS}")
        self.tree_name = tree.name
        self.method = method
        self.policy = policy
        self._backend: Union[CompiledTape, CompiledCutSets]
        if method == "exact":
            self._backend = CompiledTape(tree)
        else:
            self._backend = CompiledCutSets(tree, method, policy,
                                            cut_sets=cut_sets)
        self._defaults: Dict[str, float] = {
            e.name: e.probability for e in tree.iter_events()
            if isinstance(e, (PrimaryFailure, Condition))
            and e.probability is not None}

    @property
    def leaf_names(self) -> List[str]:
        """Leaf names in matrix column order."""
        return self._backend.leaf_names

    @property
    def defaults(self) -> Dict[str, float]:
        """The leaf events' default probabilities (a copy).

        The base valuation evaluation points are merged over; exposed so
        callers building matrices directly (e.g. :mod:`repro.uq`) fill
        certain columns exactly like the interpreted path would.
        """
        return dict(self._defaults)

    def matrix(self, points: Sequence[Optional[Dict[str, float]]]
               ) -> np.ndarray:
        """The ``(batch, n_leaves)`` matrix for a batch of override dicts.

        Each point's leaf probabilities are its overrides merged over the
        event defaults; a leaf with neither raises
        :class:`~repro.errors.QuantificationError`, as the interpreted
        path does.
        """
        return self._backend.matrix([self._merge(p) for p in points])

    def evaluate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Hazard probabilities for a pre-built leaf matrix."""
        return self._backend.evaluate(matrix)

    def evaluate(self, points: Sequence[Optional[Dict[str, float]]]
                 ) -> np.ndarray:
        """Hazard probabilities for a batch of override dicts."""
        return self._backend.evaluate(self.matrix(points))

    def scalar(self, overrides: Optional[Dict[str, float]] = None) -> float:
        """One point through the compiled pipeline, with plain floats.

        Bit-identical to ``evaluate([overrides])[0]`` but without array
        overhead — the optimizer-objective fast path.
        """
        return self._backend.scalar(self._merge(overrides))

    def _merge(self, overrides: Optional[Dict[str, float]]
               ) -> Dict[str, float]:
        if not overrides:
            return self._defaults
        merged = dict(self._defaults)
        merged.update(overrides)
        return merged

    def __repr__(self) -> str:
        return (f"CompiledHazard({self.tree_name!r}, {self.method!r}, "
                f"{type(self._backend).__name__})")


#: Per-tree compilation cache: tree object → {(method, policy): evaluator}.
#: Weak keys keep trees collectable; entries die with their tree.
_CACHE: "weakref.WeakKeyDictionary[FaultTree, Dict]" = \
    weakref.WeakKeyDictionary()


def compile_tree(tree: FaultTree, method: str = "rare_event",
                 policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
                 cut_sets: Optional[CutSetCollection] = None,
                 cache: bool = True) -> CompiledHazard:
    """Compile ``tree`` for batch quantification under ``method``.

    With ``cache=True`` (the default) the evaluator is memoized per tree
    *object*: repeated requests — an optimizer objective called per
    iteration, a sweep job re-run — reuse the compiled form.  Trees are
    immutable after validation, so object-level caching is safe.
    Explicitly passed ``cut_sets`` become part of the cache key (cut
    sets are content, e.g. a truncated MOCUS run): requests with
    different cut sets never share an evaluator.
    """
    if not cache:
        return CompiledHazard(tree, method, policy, cut_sets=cut_sets)
    per_tree = _CACHE.setdefault(tree, {})
    key = (method, policy,
           None if cut_sets is None else tuple(cut_sets))
    evaluator = per_tree.get(key)
    if evaluator is None:
        evaluator = CompiledHazard(tree, method, policy,
                                   cut_sets=cut_sets)
        per_tree[key] = evaluator
    return evaluator
