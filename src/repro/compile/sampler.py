"""Vectorized Monte Carlo sampling of a tree's structure function.

The interpreted sampler (:mod:`repro.sim.montecarlo`) walks the event
DAG once per sample with dictionary lookups at every gate.  Here the DAG
is flattened *once* into a gate program; a whole block of Bernoulli leaf
draws is then pushed through it as NumPy boolean arrays — or, for trees
without K-of-N gates, as bit-packed ``uint8`` words where each bitwise
AND/OR/XOR instruction processes eight samples at once.

Draws come from the same ``random.Random`` stream in the same order as
the interpreted loop (sample-major, leaves in first-visit order), so
:meth:`CompiledSampler.counts` is bit-for-bit compatible with
:func:`repro.sim.montecarlo.monte_carlo_counts` — same seed, same
occurrence count.
"""

from __future__ import annotations

import random
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import QuantificationError, SimulationError
from repro.fta.events import (
    Condition,
    Event,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

#: Samples per evaluation block: bounds peak memory at
#: ``block * n_leaves`` doubles regardless of the total budget.
_BLOCK = 1 << 16


class CompiledSampler:
    """A fault tree's structure function compiled for array evaluation.

    Leaves (primary failures and conditions) become input columns in
    first-visit order — the same order the interpreted sampler draws
    them — house events become constants, and every gate becomes one
    instruction over value slots.
    """

    def __init__(self, tree: FaultTree):
        self.tree_name = tree.name
        self.leaf_names: List[str] = [
            e.name for e in tree.iter_events()
            if isinstance(e, (PrimaryFailure, Condition))]
        column = {name: j for j, name in enumerate(self.leaf_names)}
        # Instructions: (gate type, k-or-None, input slots); slots are
        # leaf columns for the first len(leaf_names) ids, then one per
        # instruction output.  House constants get dedicated slots.
        self._program: List[Tuple[GateType, Optional[int],
                                  Tuple[int, ...]]] = []
        self._constants: Dict[int, bool] = {}
        slot_of: Dict[int, int] = {}
        next_slot = len(self.leaf_names)

        def lower(event: Event) -> int:
            nonlocal next_slot
            key = id(event)
            if key in slot_of:
                return slot_of[key]
            if isinstance(event, (PrimaryFailure, Condition)):
                slot = column[event.name]
            elif isinstance(event, HouseEvent):
                slot = next_slot
                next_slot += 1
                self._constants[slot] = bool(event.state)
            elif isinstance(event, IntermediateEvent):
                gate = event.gate
                inputs = [lower(child) for child in gate.inputs]
                if gate.gate_type is GateType.INHIBIT:
                    inputs.append(lower(gate.condition))
                slot = next_slot
                next_slot += 1
                self._program.append(
                    (gate.gate_type, getattr(gate, "k", None),
                     tuple(inputs), slot))
            else:  # pragma: no cover - event types are closed
                raise SimulationError(
                    f"cannot compile event of type {type(event).__name__}")
            slot_of[key] = slot
            return slot

        self._root_slot = lower(tree.top)
        self._slot_count = next_slot
        self._has_kofn = any(op[0] is GateType.KOFN
                             for op in self._program)
        # Leaf default probabilities (no tree reference: samplers are
        # cached in a weak-keyed dict, so holding the tree would pin the
        # key alive and leak one entry per sampled tree).
        self._defaults: Dict[str, float] = {
            e.name: e.probability for e in tree.iter_events()
            if isinstance(e, (PrimaryFailure, Condition))
            and e.probability is not None}

    @property
    def packable(self) -> bool:
        """True when the tree evaluates on bit-packed words (no K-of-N)."""
        return not self._has_kofn

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, draws: np.ndarray) -> np.ndarray:
        """Structure-function values for a block of leaf assignments.

        ``draws`` has shape ``(block, len(leaf_names))`` of booleans;
        returns a ``(block,)`` boolean array.
        """
        draws = np.asarray(draws, dtype=bool)
        if draws.ndim != 2 or draws.shape[1] != len(self.leaf_names):
            raise SimulationError(
                f"draw matrix must have shape "
                f"(block, {len(self.leaf_names)}), got {draws.shape}")
        return self._run_bool(draws)

    def _run_bool(self, draws: np.ndarray) -> np.ndarray:
        block = draws.shape[0]
        slots: List[Optional[np.ndarray]] = [None] * self._slot_count
        for j in range(len(self.leaf_names)):
            slots[j] = draws[:, j]
        for slot, state in self._constants.items():
            slots[slot] = np.full(block, state, dtype=bool)
        for gate_type, k, inputs, out in self._program:
            values = [slots[s] for s in inputs]
            if gate_type is GateType.AND:
                slots[out] = np.logical_and.reduce(values)
            elif gate_type is GateType.OR:
                slots[out] = np.logical_or.reduce(values)
            elif gate_type is GateType.KOFN:
                counts = np.zeros(block, dtype=np.int32)
                for v in values:
                    counts += v
                slots[out] = counts >= k
            elif gate_type is GateType.XOR:
                slots[out] = np.logical_xor.reduce(values)
            elif gate_type is GateType.NOT:
                slots[out] = ~values[0]
            elif gate_type is GateType.INHIBIT:
                slots[out] = values[0] & values[1]
            else:  # pragma: no cover - gate types are closed
                raise SimulationError(f"unknown gate type {gate_type!r}")
        result = slots[self._root_slot]
        if np.isscalar(result) or result.ndim == 0:  # pragma: no cover
            result = np.full(block, bool(result), dtype=bool)
        return result

    def _run_packed(self, draws: np.ndarray) -> int:
        """Occurrence count over bit-packed words (no K-of-N gates).

        Each leaf column is packed eight samples per ``uint8``; every
        gate is then one bitwise instruction over the packed words.
        Returns the popcount of the root restricted to the real samples.
        """
        block = draws.shape[0]
        packed = np.packbits(draws, axis=0)  # (ceil(block/8), n_leaves)
        words = packed.shape[0]
        slots: List[Optional[np.ndarray]] = [None] * self._slot_count
        for j in range(len(self.leaf_names)):
            slots[j] = packed[:, j]
        for slot, state in self._constants.items():
            slots[slot] = np.full(words, 0xFF if state else 0x00,
                                  dtype=np.uint8)
        for gate_type, _k, inputs, out in self._program:
            values = [slots[s] for s in inputs]
            if gate_type is GateType.AND:
                slots[out] = np.bitwise_and.reduce(values)
            elif gate_type is GateType.OR:
                slots[out] = np.bitwise_or.reduce(values)
            elif gate_type is GateType.XOR:
                slots[out] = np.bitwise_xor.reduce(values)
            elif gate_type is GateType.NOT:
                slots[out] = ~values[0]
            elif gate_type is GateType.INHIBIT:
                slots[out] = values[0] & values[1]
            else:  # pragma: no cover - KOFN is rejected by `packable`
                raise SimulationError(f"unknown gate type {gate_type!r}")
        root = slots[self._root_slot]
        # Trailing pad bits beyond `block` unpack as zeros via count=.
        return int(np.unpackbits(root, count=block).sum())

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def counts(self, probabilities: Optional[Dict[str, float]] = None,
               samples: int = 100_000, seed: int = 0) -> Tuple[int, int]:
        """Count hazard occurrences over ``samples`` Bernoulli draws.

        Bit-for-bit compatible with the interpreted
        :func:`repro.sim.montecarlo.monte_carlo_counts`: draws come from
        ``random.Random(seed)`` in the same sample-major order, so the
        occurrence count is identical for any tree, seed and budget.
        """
        if samples <= 0:
            raise SimulationError(f"samples must be > 0, got {samples}")
        probs = self._probabilities(probabilities)
        thresholds = np.array([probs[name] for name in self.leaf_names],
                              dtype=np.float64)
        rng = random.Random(seed)
        n_leaves = len(self.leaf_names)
        occurrences = 0
        remaining = samples
        while remaining > 0:
            block = min(remaining, _BLOCK)
            uniforms = np.array(
                [rng.random() for _ in range(block * n_leaves)],
                dtype=np.float64).reshape(block, n_leaves)
            draws = uniforms < thresholds
            if self.packable:
                occurrences += self._run_packed(draws)
            else:
                occurrences += int(self._run_bool(draws).sum())
            remaining -= block
        return occurrences, samples

    def _probabilities(self, overrides: Optional[Dict[str, float]]
                       ) -> Dict[str, float]:
        """Overrides merged over event defaults, every leaf covered.

        Mirrors :func:`repro.fta.quantify.probability_map` (same merge
        semantics, same error) without holding the tree.
        """
        overrides = overrides or {}
        result: Dict[str, float] = {}
        for name in self.leaf_names:
            if name in overrides:
                result[name] = overrides[name]
            elif name in self._defaults:
                result[name] = self._defaults[name]
            else:
                raise QuantificationError(
                    f"no probability available for {name!r}; provide "
                    "a default on the event or an override")
        return result

    def __repr__(self) -> str:
        return (f"CompiledSampler({self.tree_name!r}, "
                f"{len(self._program)} gates, "
                f"{len(self.leaf_names)} leaves, "
                f"{'packed' if self.packable else 'boolean'})")


#: Per-tree sampler cache (weak keys: samplers die with their tree).
_CACHE: "weakref.WeakKeyDictionary[FaultTree, CompiledSampler]" = \
    weakref.WeakKeyDictionary()


def compile_sampler(tree: FaultTree) -> CompiledSampler:
    """The memoized :class:`CompiledSampler` for a tree object.

    Trees are immutable after validation, so sharded Monte Carlo runs
    revisiting the same tree flatten it exactly once per process.
    """
    sampler = _CACHE.get(tree)
    if sampler is None:
        sampler = CompiledSampler(tree)
        _CACHE[tree] = sampler
    return sampler
